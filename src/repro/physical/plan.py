"""Physical operator trees.

The cost-based optimizer's output: each node records an *implementation
choice* for a logical operator.  Rows at execution are Python tuples whose
layout is given by each node's ``columns`` list.

Operators mirror a classic executor menu: table scan, index seek (the
paper's "index-lookup-join" when placed under a nested-loops Apply),
filter, compute-scalar, hash join for all join variants, nested-loops
join/apply, hash aggregation (scalar/vector/local), sort, top, union-all,
difference, max1row, and segmented execution for ``SegmentApply``.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..algebra.aggregates import AggregateFunction
from ..algebra.columns import Column
from ..algebra.relational import JoinKind
from ..algebra.scalar import AggregateCall, ScalarExpr


class PhysicalOp:
    """Base class of physical operators."""

    __slots__ = ("columns", "estimated_rows")

    def __init__(self, columns: Sequence[Column]) -> None:
        self.columns = list(columns)
        #: Cost-model output-row estimate, stamped by the optimizer's
        #: implementation pass when this node is the root of a chosen
        #: memo group (``None`` for nodes no estimate was produced for,
        #: e.g. enforcer sorts inserted below an aggregate).  Runtime
        #: feedback compares it against actual counts (repro.feedback).
        self.estimated_rows: Optional[float] = None

    @property
    def children(self) -> tuple["PhysicalOp", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return explain_physical(self)


def explain_physical(plan: PhysicalOp) -> str:
    lines: list[str] = []

    def render(node: PhysicalOp, depth: int) -> None:
        lines.append("  " * depth + node.label())
        for child in node.children:
            render(child, depth + 1)

    render(plan, 0)
    return "\n".join(lines)


class PTableScan(PhysicalOp):
    """Full scan of a stored table."""

    __slots__ = ("table_name",)

    def __init__(self, table_name: str, columns: Sequence[Column]) -> None:
        super().__init__(columns)
        self.table_name = table_name

    def label(self) -> str:
        return f"TableScan({self.table_name})"


class PIndexSeek(PhysicalOp):
    """Equality lookup into a table index.

    ``key_columns`` name the indexed stored columns (by output column) and
    ``key_exprs`` compute the probe values — typically references to outer
    parameters, making this the inner side of an index-lookup join.
    ``residual`` filters the fetched rows.
    """

    __slots__ = ("table_name", "key_columns", "key_exprs", "residual")

    def __init__(self, table_name: str, columns: Sequence[Column],
                 key_columns: Sequence[Column],
                 key_exprs: Sequence[ScalarExpr],
                 residual: Optional[ScalarExpr] = None) -> None:
        super().__init__(columns)
        self.table_name = table_name
        self.key_columns = list(key_columns)
        self.key_exprs = list(key_exprs)
        self.residual = residual

    def label(self) -> str:
        keys = ", ".join(
            f"{c!r}={e.sql()}" for c, e in zip(self.key_columns,
                                               self.key_exprs))
        residual = f", residual {self.residual.sql()}" if self.residual else ""
        return f"IndexSeek({self.table_name}; {keys}{residual})"


class PConstantScan(PhysicalOp):
    __slots__ = ("rows",)

    def __init__(self, columns: Sequence[Column],
                 rows: Sequence[tuple]) -> None:
        super().__init__(columns)
        self.rows = [tuple(r) for r in rows]

    def label(self) -> str:
        return f"ConstantScan({len(self.rows)} rows)"


class PSegmentRef(PhysicalOp):
    """Reads the current segment bound by an enclosing PSegmentApply."""

    def label(self) -> str:
        return "SegmentRef"


class PFilter(PhysicalOp):
    __slots__ = ("child", "predicate")

    def __init__(self, child: PhysicalOp, predicate: ScalarExpr) -> None:
        super().__init__(child.columns)
        self.child = child
        self.predicate = predicate

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter({self.predicate.sql()})"


class PProject(PhysicalOp):
    __slots__ = ("child", "items")

    def __init__(self, child: PhysicalOp,
                 items: Sequence[tuple[Column, ScalarExpr]]) -> None:
        super().__init__([c for c, _ in items])
        self.child = child
        self.items = [(c, e) for c, e in items]

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"ComputeScalar({len(self.items)} columns)"


class PHashJoin(PhysicalOp):
    """Hash join on equality keys, all left-join variants.

    Builds on the right input, probes with the left.  ``residual`` holds
    non-equality conjuncts evaluated on each candidate pair.
    """

    __slots__ = ("kind", "left", "right", "left_keys", "right_keys",
                 "residual")

    def __init__(self, kind: JoinKind, left: PhysicalOp, right: PhysicalOp,
                 left_keys: Sequence[ScalarExpr],
                 right_keys: Sequence[ScalarExpr],
                 residual: Optional[ScalarExpr] = None) -> None:
        columns = list(left.columns)
        if not kind.left_only_output:
            right_cols = right.columns
            if kind is JoinKind.LEFT_OUTER:
                right_cols = [c.with_nullability(True) for c in right_cols]
            columns = columns + list(right_cols)
        super().__init__(columns)
        self.kind = kind
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        keys = ", ".join(f"{l.sql()}={r.sql()}"
                         for l, r in zip(self.left_keys, self.right_keys))
        residual = f", residual {self.residual.sql()}" if self.residual else ""
        return f"HashJoin[{self.kind.value}]({keys}{residual})"


class PNestedLoopsJoin(PhysicalOp):
    """Nested loops over an *uncorrelated* right side (materialized once)."""

    __slots__ = ("kind", "left", "right", "predicate")

    def __init__(self, kind: JoinKind, left: PhysicalOp, right: PhysicalOp,
                 predicate: Optional[ScalarExpr] = None) -> None:
        columns = list(left.columns)
        if not kind.left_only_output:
            right_cols = right.columns
            if kind is JoinKind.LEFT_OUTER:
                right_cols = [c.with_nullability(True) for c in right_cols]
            columns = columns + list(right_cols)
        super().__init__(columns)
        self.kind = kind
        self.left = left
        self.right = right
        self.predicate = predicate

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        pred = self.predicate.sql() if self.predicate else "true"
        return f"NestedLoops[{self.kind.value}]({pred})"


class PNLApply(PhysicalOp):
    """Correlated nested loops: the right side re-executes per left row
    with the left row's columns bound as parameters — the physical form of
    the ``Apply`` operator (and of re-introduced correlated execution such
    as index-lookup joins).

    ``guard`` (LEFT_OUTER only) skips the inner side entirely for rows
    where it is not TRUE, NULL-padding instead (conditional scalar
    execution, paper Section 2.4).
    """

    __slots__ = ("kind", "left", "right", "predicate", "guard")

    def __init__(self, kind: JoinKind, left: PhysicalOp, right: PhysicalOp,
                 predicate: Optional[ScalarExpr] = None,
                 guard: Optional[ScalarExpr] = None) -> None:
        columns = list(left.columns)
        if not kind.left_only_output:
            right_cols = right.columns
            if kind is JoinKind.LEFT_OUTER:
                right_cols = [c.with_nullability(True) for c in right_cols]
            columns = columns + list(right_cols)
        super().__init__(columns)
        self.kind = kind
        self.left = left
        self.right = right
        self.predicate = predicate
        self.guard = guard

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        pred = f"({self.predicate.sql()})" if self.predicate else ""
        guard = f" when {self.guard.sql()}" if self.guard else ""
        return f"NLApply[{self.kind.value}]{pred}{guard}"


class PHashAggregate(PhysicalOp):
    """Hash-based vector aggregation (also used for LocalGroupBy)."""

    __slots__ = ("child", "group_columns", "aggregates", "is_local")

    def __init__(self, child: PhysicalOp, group_columns: Sequence[Column],
                 aggregates: Sequence[tuple[Column, AggregateCall]],
                 is_local: bool = False) -> None:
        super().__init__(list(group_columns) + [c for c, _ in aggregates])
        self.child = child
        self.group_columns = list(group_columns)
        self.aggregates = [(c, a) for c, a in aggregates]
        self.is_local = is_local

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def label(self) -> str:
        prefix = "LocalHashAggregate" if self.is_local else "HashAggregate"
        groups = ", ".join(repr(c) for c in self.group_columns)
        aggs = ", ".join(f"{c!r}:={a.sql()}" for c, a in self.aggregates)
        return f"{prefix}([{groups}], {aggs})"


class PStreamAggregate(PhysicalOp):
    """Group-wise aggregation over input sorted on the grouping columns."""

    __slots__ = ("child", "group_columns", "aggregates")

    def __init__(self, child: PhysicalOp, group_columns: Sequence[Column],
                 aggregates: Sequence[tuple[Column, AggregateCall]]) -> None:
        super().__init__(list(group_columns) + [c for c, _ in aggregates])
        self.child = child
        self.group_columns = list(group_columns)
        self.aggregates = [(c, a) for c, a in aggregates]

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def label(self) -> str:
        groups = ", ".join(repr(c) for c in self.group_columns)
        return f"StreamAggregate([{groups}])"


class PScalarAggregate(PhysicalOp):
    """Scalar aggregation: exactly one output row."""

    __slots__ = ("child", "aggregates")

    def __init__(self, child: PhysicalOp,
                 aggregates: Sequence[tuple[Column, AggregateCall]]) -> None:
        super().__init__([c for c, _ in aggregates])
        self.child = child
        self.aggregates = [(c, a) for c, a in aggregates]

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def label(self) -> str:
        aggs = ", ".join(f"{c!r}:={a.sql()}" for c, a in self.aggregates)
        return f"ScalarAggregate({aggs})"


class PSort(PhysicalOp):
    __slots__ = ("child", "keys")

    def __init__(self, child: PhysicalOp,
                 keys: Sequence[tuple[ScalarExpr, bool]]) -> None:
        super().__init__(child.columns)
        self.child = child
        self.keys = [(e, bool(asc)) for e, asc in keys]

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(f"{e.sql()} {'asc' if asc else 'desc'}"
                         for e, asc in self.keys)
        return f"Sort({keys})"


class PTop(PhysicalOp):
    __slots__ = ("child", "count", "offset")

    def __init__(self, child: PhysicalOp, count: int,
                 offset: int = 0) -> None:
        super().__init__(child.columns)
        self.child = child
        self.count = count
        self.offset = offset

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def label(self) -> str:
        suffix = f", offset {self.offset}" if self.offset else ""
        return f"Top({self.count}{suffix})"


class PTopN(PhysicalOp):
    """Order-aware limit: keeps only the best ``count + offset`` rows in a
    bounded heap instead of sorting the whole input — the classic Top-N
    optimization for ``ORDER BY ... LIMIT``."""

    __slots__ = ("child", "keys", "count", "offset")

    def __init__(self, child: PhysicalOp,
                 keys: Sequence[tuple[ScalarExpr, bool]],
                 count: int, offset: int = 0) -> None:
        super().__init__(child.columns)
        self.child = child
        self.keys = [(e, bool(asc)) for e, asc in keys]
        self.count = count
        self.offset = offset

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(f"{e.sql()} {'asc' if asc else 'desc'}"
                         for e, asc in self.keys)
        suffix = f", offset {self.offset}" if self.offset else ""
        return f"TopN({self.count}{suffix}; {keys})"


class PMax1row(PhysicalOp):
    __slots__ = ("child",)

    def __init__(self, child: PhysicalOp) -> None:
        super().__init__(child.columns)
        self.child = child

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Max1row"


class PUnionAll(PhysicalOp):
    __slots__ = ("inputs", "input_maps")

    def __init__(self, inputs: Sequence[PhysicalOp],
                 columns: Sequence[Column],
                 input_maps: Sequence[Sequence[Column]]) -> None:
        super().__init__(columns)
        self.inputs = list(inputs)
        self.input_maps = [list(m) for m in input_maps]

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return tuple(self.inputs)

    def label(self) -> str:
        return f"Concat({len(self.inputs)} inputs)"


class PDifference(PhysicalOp):
    __slots__ = ("left", "right", "left_map", "right_map")

    def __init__(self, left: PhysicalOp, right: PhysicalOp,
                 columns: Sequence[Column],
                 left_map: Sequence[Column],
                 right_map: Sequence[Column]) -> None:
        super().__init__(columns)
        self.left = left
        self.right = right
        self.left_map = list(left_map)
        self.right_map = list(right_map)

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "HashDifference"


class PSegmentApply(PhysicalOp):
    """Segmented execution: hash-partition the left input on the segment
    columns, then execute the right plan once per segment with its
    PSegmentRef leaves bound to the segment's rows."""

    __slots__ = ("left", "right", "segment_columns", "inner_columns")

    def __init__(self, left: PhysicalOp, right: PhysicalOp,
                 segment_columns: Sequence[Column],
                 inner_columns: Sequence[Column]) -> None:
        super().__init__(list(segment_columns) + list(right.columns))
        self.left = left
        self.right = right
        self.segment_columns = list(segment_columns)
        self.inner_columns = list(inner_columns)

    @property
    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        segs = ", ".join(repr(c) for c in self.segment_columns)
        return f"SegmentApply[{segs}]"
