"""Public facade: an embedded SQL engine running the paper's pipeline.

``Database`` owns a catalog and in-memory storage and executes SQL through
parse → bind (algebrize) → normalize (decorrelate) → cost-based optimize →
physical execution.  ``ExecutionMode`` bundles the paper-relevant
configurations:

* ``FULL`` — every technique (the paper's system);
* ``DECORRELATE_ONLY`` — subquery flattening but no GroupBy reordering,
  local aggregates or segmented execution;
* ``CORRELATED`` — normalization keeps Apply (no flattening); execution is
  nested-loops correlated, though the executor may still pick indexes;
* ``NAIVE`` — direct interpretation of the bound tree with mutual
  scalar/relational recursion (the paper's Section 2.1 strawman).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import (Any, Iterable, Iterator, Mapping, Optional, Sequence,
                    Union)

from .algebra import DataType, Get, RelationalOp, collect_nodes, explain
from .analysis import PlanAnalyzer
from .binder import Binder, BoundQuery
from .catalog import Catalog, ColumnDef, IndexDef, TableDef
from .catalog.catalog import (index_def_from_dict, index_def_to_dict,
                              table_def_from_dict)
from .catalog.statistics import CorrectionStore
from .concurrency import TrackedLock, TrackedRLock
from .core.normalize import NormalizeConfig, normalize
from .core.optimizer import Optimizer, OptimizerConfig
from .durability import (DEFAULT_CHECKPOINT_BYTES, DurabilityManager,
                         RecoveryState)
from .durability.codec import decode_row
from .errors import (BindError, CatalogError, DurabilityError,
                     ExecutionError, InjectedFault,
                     OptimizerBudgetExceeded, ParameterError, PlanError,
                     RecoveryError, ReproError)
from .executor import NaiveInterpreter
from .executor.physical import PhysicalExecutor
from .executor.vectorized import DEFAULT_BATCH_SIZE, VectorizedExecutor
from .feedback import (DEFAULT_Q_ERROR_THRESHOLD, FeedbackLoop,
                       render_tree, tree_dict, tree_max_q_error)
from .governor import OptimizerBudget, QueryStats, ResourceGovernor
from .matview import MatViewDef, MatViewManager, canonicalize, match_rewrite
from .physical import PhysicalOp, explain_physical
from .plancache import CachedPlan, PlanCache, normalize_sql_key
from .sql import MatViewStatement, parse, split_explain, split_matview_ddl
from .executor.vector_expressions import split_conjuncts
from .storage import DEFAULT_CHUNK_ROWS, Storage
from .storage.columnar import compile_zone_filters

#: Parameter bindings accepted by ``execute``: a sequence for positional
#: ``?`` markers (also accepted, in slot order, for named ones) or a
#: mapping for ``:name`` markers.
Params = Union[Sequence[Any], Mapping[str, Any], None]


@dataclass(frozen=True)
class ExecutionMode:
    """One engine configuration (normalization + optimizer switches)."""

    name: str
    normalize_config: NormalizeConfig = field(default_factory=NormalizeConfig)
    optimizer_config: OptimizerConfig = field(default_factory=OptimizerConfig)
    use_naive_interpreter: bool = False


FULL = ExecutionMode("full")

DECORRELATE_ONLY = ExecutionMode(
    "decorrelate_only",
    optimizer_config=OptimizerConfig(
        groupby_reorder=False, local_aggregates=False, segment_apply=False,
        semijoin_rewrites=False))

CORRELATED = ExecutionMode(
    "correlated",
    normalize_config=NormalizeConfig(decorrelate=False),
    optimizer_config=OptimizerConfig(
        groupby_reorder=False, local_aggregates=False, segment_apply=False,
        semijoin_rewrites=False, join_reorder=False))

NAIVE = ExecutionMode("naive", use_naive_interpreter=True)

MODES = {mode.name: mode for mode in (FULL, DECORRELATE_ONLY, CORRELATED,
                                      NAIVE)}

#: Execution engines: how a chosen physical plan is evaluated.  The
#: optimizer pipeline is identical for both — only the runtime differs.
#: ``"tuple"`` is the iterator (tuple-at-a-time) executor, ``"vectorized"``
#: the batch-at-a-time columnar executor.  (``mode="naive"`` bypasses
#: physical planning entirely and ignores the engine.)
ENGINES = ("tuple", "vectorized")

#: Output formats accepted by the unified explain API.
EXPLAIN_FORMATS = ("text", "dict")


@dataclass(frozen=True)
class ExplainOptions:
    """Options shared by every explain entry point.

    :meth:`Database.explain`, :meth:`PreparedStatement.explain`, the
    SQL-level ``EXPLAIN [ANALYZE]`` statement and the analysis CLI all
    funnel into this one shape:

    * ``analyze`` — actually execute the query once, with per-operator
      row counting, and annotate each plan node with its actual
      cardinality and Q-error next to the optimizer's estimate;
    * ``costs`` — include the optimizer's total cost estimate;
    * ``format`` — ``"text"`` (indented tree, the default) or ``"dict"``
      (JSON-safe nested dicts, the wire representation).
    """

    analyze: bool = False
    costs: bool = False
    format: str = "text"

    def __post_init__(self) -> None:
        if self.format not in EXPLAIN_FORMATS:
            raise ValueError(
                f"unknown explain format {self.format!r}; expected one "
                f"of: {', '.join(EXPLAIN_FORMATS)}")


#: One DeprecationWarning per process for the positional-costs legacy
#: form: a hot loop calling ``explain(sql, mode, True)`` used to emit
#: the identical warning on every call, drowning real warnings.
_positional_costs_warned = False


def _explain_options(deprecated: tuple, options: ExplainOptions | None,
                     analyze: bool, costs: bool,
                     format: str) -> ExplainOptions:
    """Resolve an explain call's arguments to one ``ExplainOptions``.

    ``deprecated`` captures a legacy *positional* ``costs`` argument
    (the pre-1.4 signature was ``explain(sql, mode, costs)``); passing
    it still works but warns (once per process).  An explicit
    ``options`` object wins over the individual keywords.
    """
    global _positional_costs_warned
    if deprecated:
        if len(deprecated) > 1 or options is not None:
            raise TypeError(
                "explain() takes at most one positional option (the "
                "deprecated costs flag)")
        if not _positional_costs_warned:
            _positional_costs_warned = True
            warnings.warn(
                "passing costs positionally to explain() is deprecated; "
                "use costs=... or options=ExplainOptions(costs=...)",
                DeprecationWarning, stacklevel=3)
        costs = bool(deprecated[0])
    if options is not None:
        return options
    return ExplainOptions(analyze=analyze, costs=costs, format=format)


class QueryResult:
    """Rows plus the output schema (column names and types).

    ``degraded`` is True when the answer came from a fallback plan after
    a cost-based-optimizer failure (the rows are still correct — only
    the plan quality degraded); ``stats`` carries per-query execution
    statistics (:class:`~repro.governor.QueryStats`), including the
    fallback reason and any governor budget consumption.
    """

    def __init__(self, names: list[str], rows: list[tuple],
                 types: Sequence[DataType] | None = None,
                 degraded: bool = False,
                 stats: QueryStats | None = None) -> None:
        if types is not None and len(types) != len(names):
            raise ValueError(
                f"QueryResult schema mismatch: {len(names)} column "
                f"name(s) but {len(types)} type(s)")
        self.names = names
        self.rows = rows
        self.types = (list(types) if types is not None
                      else [DataType.UNKNOWN] * len(names))
        self.degraded = degraded
        self.stats = stats if stats is not None else QueryStats(
            degraded=degraded)

    @property
    def columns(self) -> list[tuple[str, DataType]]:
        """Output schema as ``(name, DataType)`` pairs."""
        return list(zip(self.names, self.types))

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dicts keyed by output column name."""
        return [dict(zip(self.names, row)) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result.

        Raises ``ValueError`` when the result is any other shape, so a
        miswritten aggregate query fails loudly instead of silently
        returning the first of many values.
        """
        if len(self.rows) != 1 or len(self.names) != 1:
            raise ValueError(
                f"scalar() requires a 1x1 result, got {len(self.rows)} "
                f"row(s) x {len(self.names)} column(s)")
        return self.rows[0][0]

    def first(self) -> tuple | None:
        """The first row, or ``None`` for an empty result."""
        return self.rows[0] if self.rows else None

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QueryResult):
            return self.rows == other.rows
        return self.rows == other

    def __repr__(self) -> str:
        return f"QueryResult({self.names}, {len(self.rows)} rows)"


def bind_parameters(parameters: Sequence, params: Params) -> tuple:
    """Match user-supplied bindings against a statement's parameter list.

    Returns the values in slot order.  Positional statements take a
    sequence; named statements take a mapping (or a sequence in slot
    order).  ``None`` is a legal value for any parameter (SQL NULL);
    missing, extra or mis-shaped bindings raise :class:`ParameterError`.
    """
    if isinstance(params, str):
        raise ParameterError(
            "parameters must be a sequence or mapping, not a bare string")
    if not parameters:
        if params:
            raise ParameterError("statement takes no parameters")
        return ()
    named = parameters[0].name is not None
    if isinstance(params, Mapping):
        if not named:
            raise ParameterError(
                "statement uses positional (?) parameters; "
                "pass a sequence, not a mapping")
        names = [p.name for p in parameters]
        missing = [n for n in names if n not in params]
        if missing:
            raise ParameterError(
                f"missing parameter(s): {', '.join(missing)}")
        unknown = sorted(set(params) - set(names))
        if unknown:
            raise ParameterError(
                f"unknown parameter(s): {', '.join(unknown)}")
        return tuple(params[n] for n in names)
    if params is None:
        raise ParameterError(
            f"statement expects {len(parameters)} parameter(s), got 0")
    values = tuple(params)
    if len(values) != len(parameters):
        raise ParameterError(
            f"statement expects {len(parameters)} parameter(s), "
            f"got {len(values)}")
    return values


class PreparedStatement:
    """A statement compiled once and executed many times with new bindings.

    Obtained from :meth:`Database.prepare`.  The compiled plan lives in
    the database's plan cache; each :meth:`execute` consults the cache, so
    DDL or significant data growth between executions transparently
    triggers a replan (the handle never serves a stale plan).
    """

    def __init__(self, database: "Database", sql: str,
                 mode: ExecutionMode, engine: str = "tuple") -> None:
        self._database = database
        self.sql = sql
        self.mode = mode
        self.engine = engine
        self._database._cached_plan(sql, mode,
                                    engine=engine)  # compile eagerly

    def _entry(self) -> CachedPlan:
        return self._database._cached_plan(self.sql, self.mode,
                                           engine=self.engine)

    @property
    def parameters(self) -> tuple:
        """The statement's parameter markers, in slot order."""
        return self._entry().parameters

    @property
    def names(self) -> list[str]:
        """Output column names."""
        return list(self._entry().names)

    @property
    def plan(self) -> PhysicalOp | None:
        """The cached physical plan (``None`` in naive mode)."""
        return self._entry().plan

    def execute(self, params: Params = None, *,
                timeout: float | None = None,
                row_budget: int | None = None,
                memory_budget: int | None = None,
                optimizer_budget: OptimizerBudget | None = None,
                governor: ResourceGovernor | None = None) -> QueryResult:
        return self._database.execute(
            self.sql, self.mode, params, timeout=timeout,
            row_budget=row_budget, memory_budget=memory_budget,
            optimizer_budget=optimizer_budget, governor=governor,
            engine=self.engine)

    def explain(self, *deprecated,
                options: ExplainOptions | None = None,
                analyze: bool = False, costs: bool = False,
                format: str = "text",
                params: Params = None) -> "str | dict":
        """Explain this statement (see :meth:`Database.explain`).

        ``analyze=True`` executes the statement once with per-operator
        row counting; pass ``params`` for statements with parameter
        markers.  The positional ``costs`` form of the pre-1.4 signature
        still works but is deprecated.
        """
        resolved = _explain_options(deprecated, options, analyze, costs,
                                    format)
        return self._database.explain(self.sql, self.mode,
                                      options=resolved,
                                      engine=self.engine, params=params)

    def __repr__(self) -> str:
        return (f"PreparedStatement({self.sql!r}, mode={self.mode.name}, "
                f"engine={self.engine})")


class Database:
    """An embedded SQL database running the paper's optimizer pipeline."""

    def __init__(self, plan_cache_capacity: int = 128,
                 default_engine: str = "tuple",
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 plan_cache_shards: int = 1,
                 feedback: bool = False,
                 q_error_threshold: float = DEFAULT_Q_ERROR_THRESHOLD,
                 path: str | None = None,
                 fsync: bool = True,
                 checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
                 morsel_workers: int = 1,
                 chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 matview_rewrite: bool = True
                 ) -> None:
        if default_engine not in ENGINES:
            raise ValueError(
                f"unknown execution engine {default_engine!r}; "
                f"expected one of: {', '.join(ENGINES)}")
        self.catalog = Catalog()
        self.storage = Storage(chunk_rows=chunk_rows)
        self._binder = Binder(self.catalog)
        self._executor = PhysicalExecutor(self.storage)
        # ``morsel_workers > 1`` lets multi-chunk vectorized scans fan
        # chunks out over the shared morsel helper pool (repro.executor
        # .morsel); 1 — the default — keeps scans on the query thread.
        self._vectorized = VectorizedExecutor(self.storage,
                                              batch_size=batch_size,
                                              morsel_workers=morsel_workers)
        self.default_engine = default_engine
        #: Runtime cardinality observations (repro.feedback); consulted
        #: by every optimizer this database builds.
        self.corrections = CorrectionStore(row_count_of=self._row_count)
        self.feedback = FeedbackLoop(self.corrections, self._row_count,
                                     q_error_threshold=q_error_threshold)
        #: When True, every execution counts actual rows per operator
        #: and feeds them back through :attr:`feedback`.  Off by default:
        #: ungoverned execution stays at zero profiling overhead, and
        #: ``EXPLAIN ANALYZE`` profiles its one execution regardless.
        self.feedback_enabled = feedback
        # ``plan_cache_shards=1`` keeps exact global LRU order (the
        # single-threaded default); servers pass more shards to spread
        # lock contention across stripes (see repro.server).
        self.plan_cache = PlanCache(plan_cache_capacity,
                                    row_count_of=self._row_count,
                                    validator=self._plan_admissible,
                                    shards=plan_cache_shards)
        self._sessions_lock = TrackedLock("db.sessions")
        self._open_sessions: set[str] = set()
        #: Materialized views (repro.matview): lifecycle, transparent
        #: rewrite and per-commit incremental maintenance.  The storage
        #: hook makes every transactional install fold its deltas into
        #: affected view backings within the same snapshot swap.
        self.matviews = MatViewManager(self)
        #: Master switch for transparent view rewriting; per-query
        #: override via ``execute(..., use_matviews=...)``.
        self.matview_rewrite = matview_rewrite
        self.storage.matviews = self.matviews
        # -- durability (repro.durability) -----------------------------
        # ``path=None`` (the default) is a purely in-memory database:
        # no file is ever touched and nothing below runs.  With a path,
        # recovery rebuilds the committed state from checkpoint + WAL
        # *before* the first query, then every commit logs-and-fsyncs
        # ahead of its in-memory install (``Storage.wal``) and every DDL
        # logs ahead of its catalog change (:attr:`_ddl_lock`).
        self.path = path
        self._durability: DurabilityManager | None = None
        self._ddl_lock: TrackedRLock = TrackedRLock("db.ddl")
        if path is not None:
            manager = DurabilityManager(path, fsync=fsync,
                                        checkpoint_bytes=checkpoint_bytes)
            try:
                state = manager.recover()
                self._apply_recovery(manager, state)
            except BaseException:
                manager.close()
                raise
            self._durability = manager
            self._ddl_lock = manager.ddl_lock
            self.storage.wal = manager

    # -- DDL / DML ---------------------------------------------------------------

    def create_table(self, name: str,
                     columns: Sequence[tuple],
                     primary_key: Sequence[str] = (),
                     unique_keys: Sequence[Sequence[str]] = ()) -> TableDef:
        """Create a table.

        ``columns`` is a sequence of ``(name, DataType)`` or
        ``(name, DataType, nullable)`` tuples.
        """
        defs = []
        for spec in columns:
            if len(spec) == 2:
                defs.append(ColumnDef(spec[0], spec[1]))
            else:
                defs.append(ColumnDef(spec[0], spec[1], spec[2]))
        table = TableDef(name, defs, primary_key, unique_keys)
        with self._ddl_lock:
            if self._durability is not None:
                # Validate → log → apply: a doomed create logs nothing,
                # and because the lock spans log and apply, no commit
                # can reference a table whose creation record trails it
                # in the WAL.
                if self.catalog.has_table(name):
                    raise CatalogError(f"table {name!r} already exists")
                if self.catalog.has_view(name):
                    raise CatalogError(f"{name!r} already names a view")
                self._durability.log_ddl({"kind": "create_table",
                                          "table": table.to_dict()})
            self.catalog.create_table(table)
            self.storage.create(table)
        self.plan_cache.invalidate()
        self.corrections.invalidate(name)
        self._maybe_checkpoint()
        return table

    def create_index(self, index_name: str, table_name: str,
                     column_names: Sequence[str],
                     kind: str = "hash") -> IndexDef:
        index = IndexDef(index_name, table_name, tuple(column_names), kind)
        with self._ddl_lock:
            if self._durability is not None:
                if self.catalog.has_index(index_name):
                    raise CatalogError(
                        f"index {index_name!r} already exists")
                table = self.catalog.get_table(table_name)
                for col in index.column_names:
                    if not table.has_column(col):
                        raise CatalogError(
                            f"index column {col!r} not in table "
                            f"{table.name!r}")
                self._durability.log_ddl({"kind": "create_index",
                                          "index": index_def_to_dict(
                                              index)})
            self.catalog.create_index(index)
            # Copy-on-write: the indexed version is installed atomically,
            # so concurrent readers see either the old version (no index)
            # or the new one (index fully built), never a half-built
            # index.
            self.storage.apply_add_index(table_name, index)
        self.plan_cache.invalidate()
        self._maybe_checkpoint()
        return index

    def create_view(self, name: str, sql: str) -> None:
        """Create a view: a named query expanded (and then normalized and
        optimized) wherever it is referenced.  The definition is validated
        immediately by binding it once."""
        bound = self._binder.bind(parse(sql))  # validate eagerly
        if bound.parameters:
            raise BindError(
                "view definitions cannot contain parameters")
        with self._ddl_lock:
            if self._durability is not None:
                if self.catalog.has_view(name):
                    raise CatalogError(f"view {name!r} already exists")
                if self.catalog.has_table(name):
                    raise CatalogError(f"{name!r} already names a table")
                self._durability.log_ddl({"kind": "create_view",
                                          "name": name, "sql": sql})
            self.catalog.create_view(name, sql)
        self.plan_cache.invalidate()
        self._maybe_checkpoint()

    def drop_view(self, name: str) -> None:
        with self._ddl_lock:
            if self._durability is not None:
                if not self.catalog.has_view(name):
                    raise CatalogError(f"unknown view {name!r}")
                self._durability.log_ddl({"kind": "drop_view",
                                          "name": name})
            self.catalog.drop_view(name)
        self.plan_cache.invalidate()
        self._maybe_checkpoint()

    def drop_table(self, name: str) -> None:
        """Drop a table, its storage, its indexes — and cascade-drop any
        materialized view defined over it (a view whose base is gone can
        never be maintained or refreshed again)."""
        with self._ddl_lock:
            if self.catalog.has_matview(name):
                raise CatalogError(
                    f"{name!r} is a materialized view; use DROP "
                    "MATERIALIZED VIEW")
            for viewdef in self.catalog.matviews_on(name):
                self.matviews.drop(getattr(viewdef, "name"))
            if self._durability is not None:
                if not self.catalog.has_table(name):
                    raise CatalogError(f"unknown table {name!r}")
                self._durability.log_ddl({"kind": "drop_table",
                                          "name": name})
            self.catalog.drop_table(name)
            self.storage.drop(name)
        self.plan_cache.invalidate()
        self.corrections.invalidate(name)
        self._maybe_checkpoint()

    def table_names(self) -> list[str]:
        return [t.name for t in self.catalog.tables()]

    def table_statistics(self, name: str):
        """Current statistics for a stored table (recomputed lazily)."""
        return self.storage.get(name).statistics()

    def insert(self, table_name: str,
               rows: Iterable[Sequence[Any] | dict]) -> int:
        """Autocommit batch insert (copy-on-write: all-or-nothing, and
        concurrent snapshot readers never see a partial batch).  On a
        durable database the batch is logged and fsynced before it is
        installed."""
        if self.catalog.has_matview(table_name):
            raise CatalogError(
                f"cannot insert into materialized view {table_name!r}; "
                "its contents are maintained automatically")
        count = self.storage.apply_insert(table_name, rows)
        self._maybe_checkpoint()
        return count

    # -- durability ----------------------------------------------------------------

    @property
    def durable(self) -> bool:
        """True when this database persists to disk (``path=`` given)."""
        return self._durability is not None

    def durability_status(self) -> dict | None:
        """Durability observability (``None`` for in-memory databases):
        WAL size, next LSN, last checkpoint and the recovery report."""
        if self._durability is None:
            return None
        return self._durability.status()

    def checkpoint(self, force: bool = True) -> bool:
        """Checkpoint now: serialize the current state and rotate the
        WAL.  Returns True when a checkpoint was published (``force=
        False`` applies the size trigger; a busy writer lock makes the
        attempt a no-op either way).  Raises
        :class:`~repro.errors.DurabilityError` on an in-memory database.
        """
        if self._durability is None:
            raise DurabilityError(
                "checkpoint requires a durable database "
                "(Database(path=...))")
        return self._durability.checkpoint(self, force=force)

    def close(self) -> None:
        """Release durability file handles.  Safe to call repeatedly and
        a no-op in-memory.  Deliberately does not checkpoint: the WAL
        already holds every committed change and recovery replays it."""
        if self._durability is not None:
            self._durability.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _maybe_checkpoint(self) -> None:
        """Size-triggered checkpoint, called after commit paths.  An
        injected ``wal.checkpoint`` fault aborts the rotation but never
        the triggering commit — the commit is already durable in the
        WAL, and the previous checkpoint + intact log remain the
        authoritative recovery source."""
        if self._durability is None or not self._durability.checkpoint_due:
            return
        try:
            self._durability.checkpoint(self)
        except InjectedFault:
            pass

    def _apply_recovery(self, manager: DurabilityManager,
                        state: RecoveryState) -> None:
        """Rebuild the committed state: checkpoint image first, then the
        WAL records newer than it, oldest first.  Runs before
        ``self._durability`` is set, so nothing here re-logs."""
        if state.checkpoint is not None:
            self._load_checkpoint_image(state.checkpoint)
        for record in manager.replay(state):
            try:
                self._apply_wal_record(record)
            except RecoveryError:
                raise
            except ReproError as exc:
                raise RecoveryError(
                    f"replaying WAL record lsn={record.get('lsn')} "
                    f"failed: {exc}") from exc
        # View contents are derived state: the WAL carries only base
        # rows, so after the bases are restored every materialized view
        # is rebuilt from scratch — a crash can never surface a view
        # inconsistent with its base.
        try:
            self.matviews.rebuild_all()
        except ReproError as exc:
            raise RecoveryError(
                f"rebuilding materialized views failed: {exc}") from exc
        self.plan_cache.invalidate()

    def _load_checkpoint_image(self, checkpoint: dict) -> None:
        image = checkpoint["catalog"]
        try:
            for payload in image["tables"]:
                table = table_def_from_dict(payload)
                self.catalog.create_table(table)
                self.storage.create(table)
            for name, rows in checkpoint["rows"].items():
                stored = self.storage.get(name)
                for row in rows:
                    stored.insert(decode_row(row))
            for payload in image["indexes"]:
                index = index_def_from_dict(payload)
                self.catalog.create_index(index)
                self.storage.apply_add_index(index.table_name, index)
            for view in image["views"]:
                self.catalog.create_view(view["name"], view["sql"])
            for matview in image.get("matviews", []):
                # The backing table (schema and rows) already arrived
                # via the table image above; only the definition needs
                # re-registering.
                self.catalog.create_matview(
                    MatViewDef.from_sql(matview["name"], matview["sql"]))
            self.corrections.load_state(checkpoint.get("corrections", []))
        except ReproError as exc:
            raise RecoveryError(
                f"applying checkpoint lsn={checkpoint.get('lsn')} "
                f"failed: {exc}") from exc

    def _apply_wal_record(self, record: dict) -> None:
        """Re-apply one replayed record through direct catalog/storage
        calls (never the logging DDL/commit paths above)."""
        kind = record.get("kind")
        if kind == "commit":
            for name, rows in record.get("writes", {}).items():
                stored = self.storage.get(name)
                for row in rows:
                    stored.insert(decode_row(row))
        elif kind == "create_table":
            table = table_def_from_dict(record["table"])
            self.catalog.create_table(table)
            self.storage.create(table)
        elif kind == "create_index":
            index = index_def_from_dict(record["index"])
            self.catalog.create_index(index)
            self.storage.apply_add_index(index.table_name, index)
        elif kind == "create_view":
            self.catalog.create_view(record["name"], record["sql"])
        elif kind == "create_matview":
            viewdef = MatViewDef.from_sql(record["name"], record["sql"])
            base = self.catalog.get_table(viewdef.table)
            backing = viewdef.backing_def(base)
            self.catalog.create_matview(viewdef, backing)
            # Contents are rebuilt wholesale at the end of recovery.
            self.storage.create(backing)
        elif kind == "drop_matview":
            self.catalog.drop_matview(record["name"])
            self.storage.drop(record["name"])
        elif kind == "drop_view":
            self.catalog.drop_view(record["name"])
        elif kind == "drop_table":
            self.catalog.drop_table(record["name"])
            self.storage.drop(record["name"])
        else:
            raise RecoveryError(f"unknown WAL record kind {kind!r} "
                                f"(lsn={record.get('lsn')})")

    # -- queries -------------------------------------------------------------------

    def execute(self, sql: str, mode: ExecutionMode | str = FULL,
                params: Params = None, *,
                timeout: float | None = None,
                row_budget: int | None = None,
                memory_budget: int | None = None,
                optimizer_budget: OptimizerBudget | None = None,
                governor: ResourceGovernor | None = None,
                engine: str | None = None,
                snapshot=None,
                use_matviews: bool | None = None) -> QueryResult:
        """Execute ``sql``, binding ``params`` to its parameter markers.

        Plans are served from :attr:`plan_cache`: re-executing the same
        statement text (modulo whitespace and keyword case) skips parse,
        bind, normalization and optimization entirely.  ``mode`` accepts
        an :class:`ExecutionMode` or its name (``"full"``, ``"naive"``,
        ...).  ``engine`` selects the runtime — ``"tuple"`` (iterator) or
        ``"vectorized"`` (batch-at-a-time columnar); it defaults to the
        database's :attr:`default_engine` and does not affect results,
        only how the chosen physical plan is evaluated.

        Resource governance: ``timeout`` (wall-clock seconds, covering
        optimization and execution), ``row_budget`` (rows examined),
        ``memory_budget`` (rows buffered in flight) and
        ``optimizer_budget`` build a per-query
        :class:`~repro.governor.ResourceGovernor`; alternatively pass a
        pre-built ``governor``.  Timeout and budget violations raise
        :class:`~repro.errors.QueryTimeout` /
        :class:`~repro.errors.ResourceExhausted`.  Optimizer failures
        (budget exhaustion, plan errors, injected faults) never fail the
        query: execution degrades to a heuristic plan — ultimately to
        naive interpretation — and the result is flagged via
        ``QueryResult.degraded`` and ``QueryResult.stats``.

        ``snapshot`` pins the data the query reads: pass a
        :class:`~repro.storage.table.StorageSnapshot` (or any object with
        a compatible ``get``) and execution resolves every table from it
        instead of live storage.  Sessions use this for snapshot
        isolation; plans and the plan cache are unaffected (a plan is
        data-version agnostic).

        ``use_matviews`` overrides the database's
        :attr:`matview_rewrite` switch for this one statement: ``False``
        forces the query to run against base tables even when a
        materialized view matches (``True`` re-enables per query).

        ``CREATE MATERIALIZED VIEW name AS select``, ``DROP MATERIALIZED
        VIEW name`` and ``REFRESH MATERIALIZED VIEW name`` are routed to
        :attr:`matviews` and return a one-row status result.
        """
        resolved = self._resolve_mode(mode)
        resolved_engine = self._resolve_engine(engine)
        matview_stmt = split_matview_ddl(sql)
        if matview_stmt is not None:
            return self._execute_matview_ddl(matview_stmt)
        explain_stmt = split_explain(sql)
        if explain_stmt is not None:
            # SQL-level EXPLAIN [ANALYZE]: route through the unified
            # explain API and return the rendering as a one-column result.
            inner_sql, analyze = explain_stmt
            rendered = self.explain(
                inner_sql, resolved,
                options=ExplainOptions(analyze=analyze),
                engine=resolved_engine, params=params)
            return QueryResult(["plan"],
                               [(line,) for line in rendered.split("\n")],
                               [DataType.VARCHAR])
        gov = governor
        if gov is None and (timeout is not None or row_budget is not None
                            or memory_budget is not None
                            or optimizer_budget is not None):
            gov = ResourceGovernor(timeout=timeout, row_budget=row_budget,
                                   memory_budget=memory_budget,
                                   optimizer_budget=optimizer_budget)
        started = time.monotonic()
        if gov is not None:
            gov.start()
        allow_rewrite = (self.matview_rewrite if use_matviews is None
                         else use_matviews)
        entry = self._cached_plan(sql, resolved, gov,
                                  engine=resolved_engine,
                                  allow_rewrite=allow_rewrite)
        if entry.matview_name is not None and snapshot is not None:
            # A pinned snapshot may predate the view (or a transaction
            # may hold staged-but-unmaintained writes): when the backing
            # table is not resolvable from the snapshot, recompile
            # against base tables instead of failing mid-execution.
            try:
                snapshot.get(entry.matview_name)
            except ReproError:
                entry = self._cached_plan(sql, resolved, gov,
                                          engine=resolved_engine,
                                          allow_rewrite=False)
        if entry.matview_name is not None:
            self.matviews.note_rewrite()
        values = bind_parameters(entry.parameters, params)
        degraded = entry.degraded
        reason = entry.fallback_reason
        profile: dict[Any, int] | None = (
            {} if self.feedback_enabled and entry.plan is not None
            else None)
        try:
            rows = self._run_entry(entry, values, gov, snapshot, profile)
        except InjectedFault as fault:
            # The physical executor died on an injected infrastructure
            # fault before any row reached the caller (results are fully
            # materialized): re-run on the independent naive interpreter.
            degraded = True
            reason = f"executor fault: {fault}"
            profile = None  # partial counts from the dead run are noise
            rows = self._run_naive(entry.rel, values, gov, snapshot)
        stats = QueryStats(elapsed_seconds=time.monotonic() - started,
                           degraded=degraded, fallback_reason=reason)
        if gov is not None:
            gov.fill_stats(stats)
        if profile:
            observed = self.feedback.record(entry, profile)
            if observed is not None:
                stats.max_q_error = observed.max_q_error
        return QueryResult(list(entry.names), rows, entry.types,
                           degraded=degraded, stats=stats)

    def _execute_matview_ddl(self,
                             statement: MatViewStatement) -> QueryResult:
        if statement.kind == "create":
            self.matviews.create(statement.name, statement.sql)
            message = f"created materialized view {statement.name}"
        elif statement.kind == "drop":
            self.matviews.drop(statement.name)
            message = f"dropped materialized view {statement.name}"
        else:
            self.matviews.refresh(statement.name)
            message = f"refreshed materialized view {statement.name}"
        return QueryResult(["status"], [(message,)], [DataType.VARCHAR])

    def _run_entry(self, entry: CachedPlan, values: tuple,
                   gov: ResourceGovernor | None,
                   snapshot=None,
                   profile: dict[Any, int] | None = None) -> list[tuple]:
        if entry.executable is None:
            # Naive mode, or a degraded entry whose fallback plan could
            # not be built: interpret the bound logical tree directly.
            return self._run_naive(entry.rel, values, gov, snapshot,
                                   profile)
        return self._executor_for(entry.engine).run_prepared(
            entry.executable, values, gov, storage=snapshot,
            profile=profile)

    def _executor_for(self, engine: str):
        return self._vectorized if engine == "vectorized" else self._executor

    def _run_naive(self, rel: RelationalOp, values: tuple,
                   gov: ResourceGovernor | None,
                   snapshot=None,
                   profile: dict[Any, int] | None = None) -> list[tuple]:
        source = snapshot if snapshot is not None else self.storage
        interpreter = NaiveInterpreter(
            lambda name: source.get(name).rows, governor=gov,
            profile=profile)
        return interpreter.run(rel, values)

    def prepare(self, sql: str,
                mode: ExecutionMode | str = FULL,
                engine: str | None = None) -> PreparedStatement:
        """Compile ``sql`` once for repeated execution with fresh bindings."""
        return PreparedStatement(self, sql, self._resolve_mode(mode),
                                 self._resolve_engine(engine))

    # -- sessions ------------------------------------------------------------------

    def session(self, lock_timeout: float = 5.0,
                default_mode: ExecutionMode | str = FULL,
                default_engine: str | None = None):
        """Open a :class:`~repro.server.sessions.Session` on this database.

        Sessions provide begin/commit/rollback with copy-on-write
        snapshot isolation and are safe to use from one thread each;
        any number of sessions may run concurrently.
        """
        from .server.sessions import Session  # deferred: avoid cycle
        return Session(self, lock_timeout=lock_timeout,
                       default_mode=self._resolve_mode(default_mode),
                       default_engine=self._resolve_engine(default_engine))

    def _register_session(self, session_id: str) -> None:
        with self._sessions_lock:
            self._open_sessions.add(session_id)

    def _deregister_session(self, session_id: str) -> None:
        with self._sessions_lock:
            self._open_sessions.discard(session_id)

    @property
    def open_session_count(self) -> int:
        with self._sessions_lock:
            return len(self._open_sessions)

    def _resolve_engine(self, engine: str | None) -> str:
        if engine is None:
            return self.default_engine
        if engine not in ENGINES:
            raise ValueError(
                f"unknown execution engine {engine!r}; "
                f"expected one of: {', '.join(ENGINES)}")
        return engine

    def _resolve_mode(self, mode: ExecutionMode | str) -> ExecutionMode:
        if isinstance(mode, ExecutionMode):
            return mode
        try:
            return MODES[mode]
        except (KeyError, TypeError):
            raise ValueError(
                f"unknown execution mode {mode!r}; expected an "
                f"ExecutionMode or one of: "
                f"{', '.join(sorted(MODES))}") from None

    def _cached_plan(self, sql: str, mode: ExecutionMode,
                     gov: ResourceGovernor | None = None,
                     engine: str = "tuple",
                     allow_rewrite: bool = True) -> CachedPlan:
        """The compiled form of ``sql``, from cache or built fresh.

        Fault-tolerant: a failing plan-cache lookup is a cache miss, a
        failing insertion is skipped, and a cost-based-optimizer failure
        degrades to a fallback plan (see :meth:`_degraded_plan`).
        Degraded entries are returned but never admitted to the cache, so
        one optimizer hiccup cannot pin a bad plan for future queries.

        Rewrite-enabled and rewrite-disabled compilations of the same
        text cache under distinct mode keys (``"<mode>"`` vs
        ``"<mode>#raw"``): a ``use_matviews=False`` execution must never
        be served a view-scanning plan.  The key depends only on what
        the caller *requested* — never on whether views currently exist,
        which a concurrent DROP/CREATE cycle can flip between sampling
        it and consulting the cache; keying on that racy state once let
        a raw lookup land on a rewritten entry.  Only ``#raw`` entries
        are guaranteed view-free, so the snapshot-guard recompile in
        :meth:`execute` relies on exactly that invariant.
        """
        sql_key = normalize_sql_key(sql)
        requested = allow_rewrite and self.matview_rewrite
        rewriting = requested and self.catalog.has_matviews()
        mode_key = mode.name
        if not requested:
            mode_key += "#raw"
        try:
            entry = self.plan_cache.get(sql_key, mode_key,
                                        self.catalog.version, engine)
        except InjectedFault:
            entry = None
        if entry is not None:
            return entry
        bound, fingerprint, matview_name, rewritten_sql = \
            self._bind_with_rewrite(sql, rewriting)
        table_names = frozenset(
            get.table_name.lower()
            for get in collect_nodes(bound.rel,
                                     lambda n: isinstance(n, Get)))
        if fingerprint is not None:
            table_names |= {fingerprint.table}
        degraded = False
        reason: str | None = None
        if mode.use_naive_interpreter:
            plan = None
            executable = None
        else:
            # Normalization runs outside the fallback ladder: its errors
            # (e.g. the plan-depth cap) also doom the fallback tiers.
            normalized = normalize(bound.rel, mode.normalize_config)
            analyzer = PlanAnalyzer.for_admission(self._index_provider)
            try:
                if analyzer is not None:
                    analyzer.check_logical(normalized,
                                           stage="admission:logical")
                plan = self._optimizer(mode, gov).optimize(normalized)
                executable = self._executor_for(engine).prepare(plan)
                if analyzer is not None:
                    analyzer.check_physical(plan,
                                            stage="admission:physical")
            except (PlanError, OptimizerBudgetExceeded, InjectedFault,
                    ExecutionError) as exc:
                degraded = True
                reason = f"{type(exc).__name__}: {exc}"
                plan, executable = self._degraded_plan(mode, normalized,
                                                       engine)
        entry = CachedPlan(
            sql_key=sql_key,
            mode_name=mode_key,
            catalog_version=self.catalog.version,
            engine=engine,
            names=list(bound.names),
            types=bound.column_types,
            parameters=bound.parameters,
            plan=plan,
            rel=bound.rel,
            executable=executable,
            snapshot=self.plan_cache.capture_snapshot(table_names),
            table_names=table_names,
            degraded=degraded,
            fallback_reason=reason,
            matview_name=matview_name,
            rewritten_sql=rewritten_sql,
            fingerprint=fingerprint)
        if not degraded:
            try:
                self.plan_cache.put(entry)
            except InjectedFault:
                pass  # uncached, but the compiled entry is still good
        return entry

    def _bind_with_rewrite(self, sql: str, rewriting: bool):
        """Bind ``sql``; when rewriting, try to substitute a matching
        materialized view.

        Returns ``(bound, fingerprint, matview_name, rewritten_sql)``.
        The substitution is accepted only when the rewritten query binds
        to the *identical* output schema and parameter list — any
        discrepancy falls back to the original binding, so the rewrite
        can degrade silently but never change results.
        """
        parsed = parse(sql)
        bound = self._binder.bind(parsed)
        fingerprint = canonicalize(parsed)
        if (not rewriting or fingerprint is None
                or not fingerprint.aggregates):
            return bound, fingerprint, None, None
        candidate = self._rewrite_candidate(fingerprint)
        if candidate is None:
            return bound, fingerprint, None, None
        view_name, rewritten = candidate
        try:
            rebound = self._binder.bind(parse(rewritten))
        except ReproError:
            return bound, fingerprint, None, None
        if (list(rebound.names) != list(bound.names)
                or rebound.column_types != bound.column_types
                or rebound.parameters != bound.parameters):
            return bound, fingerprint, None, None
        return rebound, fingerprint, view_name, rewritten

    def _rewrite_candidate(self, fingerprint):
        """The smallest registered view answering ``fingerprint``, as
        ``(view name, rewritten SQL)``; ``None`` when nothing matches."""
        best = None
        for viewdef in self.catalog.matviews():
            if not isinstance(viewdef, MatViewDef):
                continue
            rewritten = match_rewrite(fingerprint, viewdef)
            if rewritten is None:
                continue
            size = self._row_count(viewdef.name)
            if best is None or size < best[2]:
                best = (viewdef.name, rewritten, size)
        if best is None:
            return None
        return best[0], best[1]

    def _degraded_plan(self, mode: ExecutionMode, normalized: RelationalOp,
                       engine: str = "tuple"
                       ) -> tuple[PhysicalOp | None, Any]:
        """Fallback tiers after a cost-based-optimizer failure.

        First a heuristic plan (the normalized tree implemented with no
        exploration and no budgets); if even that fails, ``(None, None)``
        selects naive interpretation of the bound tree — an independent
        code path that cannot share the optimizer's failure mode.  Each
        tier is statically verified before being accepted, so a fallback
        never smuggles in a plan the primary tier would have rejected.
        """
        analyzer = PlanAnalyzer.for_admission(self._index_provider)
        try:
            plan = self._optimizer(mode).heuristic_plan(normalized)
            executable = self._executor_for(engine).prepare(plan)
            if analyzer is not None:
                analyzer.check_physical(plan, stage="fallback:heuristic")
            return plan, executable
        except (PlanError, OptimizerBudgetExceeded, InjectedFault,
                ExecutionError):
            return None, None

    def _row_count(self, table_name: str) -> int:
        try:
            return len(self.storage.get(table_name).rows)
        except ReproError:
            return 0

    def _plan_admissible(self, entry: CachedPlan) -> bool:
        """Plan-cache admission gate: entries that fail static
        verification are refused (never cached), independently of the
        louder per-stage checks in :meth:`_cached_plan`."""
        analyzer = PlanAnalyzer.for_admission(self._index_provider)
        if analyzer is None:
            return True
        return analyzer.admissible(entry.rel, entry.plan)

    def explain(self, sql: str, mode: ExecutionMode | str = FULL,
                *deprecated, options: ExplainOptions | None = None,
                analyze: bool = False, costs: bool = False,
                format: str = "text", engine: str | None = None,
                params: Params = None) -> "str | dict":
        """The query's plan — estimated, and with ``analyze`` also actual.

        The default renders the normalized logical tree and the chosen
        physical plan as text.  ``costs=True`` appends the optimizer's
        estimated cost (arbitrary work units) and estimated output rows.
        ``analyze=True`` *executes the query once*, counting actual rows
        per operator, and annotates every plan node with estimated rows,
        actual rows and their Q-error; the observation is also fed into
        the database's feedback loop.  ``format="dict"`` returns JSON-safe
        nested dicts instead of text (node keys: ``op``,
        ``estimated_rows``, ``actual_rows``, ``q_error``, ``children``).
        All settings can be bundled in an :class:`ExplainOptions` via
        ``options=``, which the other explain entry points share.

        The pre-1.4 positional ``costs`` argument
        (``explain(sql, mode, True)``) still works but warns with
        ``DeprecationWarning``.
        """
        resolved = _explain_options(deprecated, options, analyze, costs,
                                    format)
        mode = self._resolve_mode(mode)
        if resolved.analyze:
            return self._explain_analyze(sql, mode, resolved,
                                         self._resolve_engine(engine),
                                         params)
        bound, _, matview_name, rewritten_sql = self._bind_with_rewrite(
            sql, self.matview_rewrite and self.catalog.has_matviews())
        normalized = normalize(bound.rel, mode.normalize_config)
        costed = None
        plan = None
        if not mode.use_naive_interpreter:
            optimizer = self._optimizer(mode)
            if resolved.costs:
                costed = optimizer.optimize_with_cost(normalized)
                plan = costed.plan
            else:
                plan = optimizer.optimize(normalized)
        if resolved.format == "dict":
            payload: dict[str, Any] = {
                "sql": sql, "mode": mode.name, "analyze": False,
                "logical": explain(normalized),
                "plan": tree_dict(plan if plan is not None
                                  else normalized)}
            if costed is not None:
                payload["cost"] = costed.cost
            if matview_name is not None:
                payload["matview"] = {"view": matview_name,
                                      "sql": rewritten_sql}
            return payload
        sections = []
        if matview_name is not None:
            sections += ["-- materialized view --",
                         f"rewritten to scan {matview_name}:",
                         str(rewritten_sql)]
        sections += ["-- logical (normalized) --", explain(normalized)]
        if plan is not None:
            sections += ["-- physical --", explain_physical(plan)]
        if costed is not None:
            from .core.optimizer import Estimator

            estimate = Estimator(
                self._stats_provider,
                corrections=self.corrections).estimate(normalized)
            sections += [
                "-- estimates --",
                f"cost: {costed.cost:.1f}",
                f"rows: {estimate.rows:.1f}",
            ]
        return "\n".join(sections)

    def _explain_analyze(self, sql: str, mode: ExecutionMode,
                         options: ExplainOptions, engine: str,
                         params: Params) -> "str | dict":
        """One profiled execution, rendered as an annotated plan tree.

        Physical plans (tuple/vectorized engines) are annotated from the
        estimates the optimizer stamped at costing time; naive mode
        interprets the bound logical tree, so its estimates are computed
        at explain time by walking the tree with the estimator.  The
        observation is recorded into the feedback loop exactly as an
        ordinary feedback-enabled execution would.
        """
        entry = self._cached_plan(sql, mode, engine=engine)
        values = bind_parameters(entry.parameters, params)
        profile: dict[Any, int] = {}
        started = time.monotonic()
        rows = self._run_entry(entry, values, None, None, profile)
        elapsed = time.monotonic() - started
        stats = QueryStats(elapsed_seconds=elapsed,
                           degraded=entry.degraded,
                           fallback_reason=entry.fallback_reason)
        if entry.plan is not None:
            self.feedback.record(entry, profile)
            tree = tree_dict(entry.plan, profile)
        else:
            tree = tree_dict(entry.rel, profile,
                             self._logical_estimates(entry.rel))
        stats.max_q_error = tree_max_q_error(tree)
        if options.format == "dict":
            payload = {"sql": sql, "mode": mode.name,
                       "engine": entry.engine, "analyze": True,
                       "plan": tree, "row_count": len(rows),
                       "stats": stats.as_dict()}
            if entry.matview_name is not None:
                payload["matview"] = {"view": entry.matview_name,
                                      "sql": entry.rewritten_sql}
            return payload
        header = ("-- physical (analyze) --" if entry.plan is not None
                  else "-- logical (analyze) --")
        sections = [header, render_tree(tree), "-- execution --",
                    f"rows: {len(rows)}",
                    f"elapsed: {elapsed:.6f}s"]
        if entry.matview_name is not None:
            sections = ["-- materialized view --",
                        f"rewritten to scan {entry.matview_name}:",
                        str(entry.rewritten_sql)] + sections
        if stats.max_q_error is not None:
            sections.append(f"max q-error: {stats.max_q_error:.2f}")
        return "\n".join(sections)

    def _logical_estimates(self, rel: RelationalOp) -> dict[int, float]:
        """Per-node cardinality estimates for a logical tree, keyed by
        node identity — EXPLAIN ANALYZE's estimate source in naive mode,
        where no physical plan carries stamped estimates."""
        from .core.optimizer import Estimator

        estimator = Estimator(self._stats_provider,
                              corrections=self.corrections)
        estimates: dict[int, float] = {}

        def visit(node: RelationalOp) -> None:
            try:
                estimates[id(node)] = estimator.estimate(node).rows
            except ReproError:
                pass  # advisory only: an inestimable node shows no est=
            for child in node.children:
                visit(child)

        visit(rel)
        return estimates

    def plan(self, sql: str, mode: ExecutionMode | str = FULL) -> PhysicalOp:
        mode = self._resolve_mode(mode)
        bound = self._binder.bind(parse(sql))
        return self._plan(bound, mode)

    def _plan(self, bound: BoundQuery, mode: ExecutionMode) -> PhysicalOp:
        normalized = normalize(bound.rel, mode.normalize_config)
        return self._optimizer(mode).optimize(normalized)

    def _optimizer(self, mode: ExecutionMode,
                   gov: ResourceGovernor | None = None) -> Optimizer:
        return Optimizer(self._stats_provider, self._index_provider,
                         mode.optimizer_config, governor=gov,
                         corrections=self.corrections,
                         zone_provider=self._zone_skip_rows)

    # -- optimizer services ------------------------------------------------------

    def _stats_provider(self, table_name: str):
        try:
            return self.storage.get(table_name).statistics()
        except ReproError:
            return None

    def _index_provider(self, table_name: str) -> list[tuple[str, ...]]:
        try:
            table = self.catalog.get_table(table_name)
        except ReproError:
            return []
        candidates = [tuple(key) for key in table.all_keys()]
        for index in self.catalog.indexes_on(table_name):
            candidates.append(tuple(index.column_names))
        return candidates

    def _zone_skip_rows(self, table_name: str, predicate,
                        scan_columns) -> float:
        """Rows the chunk zone maps prove unreachable for ``predicate``
        — the optimizer's zone provider (literal conjuncts only; at
        plan time parameter values are unknown)."""
        try:
            table = self.storage.get(table_name)
        except ReproError:
            return 0.0
        layout = {c.cid: i for i, c in enumerate(scan_columns)}
        prunes = compile_zone_filters(split_conjuncts(predicate), layout,
                                      allow_params=False)
        if not prunes:
            return 0.0
        no_params: dict = {}
        skipped = 0
        for unit in table.scan_units():
            if any(fn(unit.zones, no_params) for fn in prunes):
                skipped += unit.nrows
        return float(skipped)
