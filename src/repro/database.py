"""Public facade: an embedded SQL engine running the paper's pipeline.

``Database`` owns a catalog and in-memory storage and executes SQL through
parse → bind (algebrize) → normalize (decorrelate) → cost-based optimize →
physical execution.  ``ExecutionMode`` bundles the paper-relevant
configurations:

* ``FULL`` — every technique (the paper's system);
* ``DECORRELATE_ONLY`` — subquery flattening but no GroupBy reordering,
  local aggregates or segmented execution;
* ``CORRELATED`` — normalization keeps Apply (no flattening); execution is
  nested-loops correlated, though the executor may still pick indexes;
* ``NAIVE`` — direct interpretation of the bound tree with mutual
  scalar/relational recursion (the paper's Section 2.1 strawman).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Optional, Sequence

from .algebra import DataType, RelationalOp, explain
from .binder import Binder, BoundQuery
from .catalog import Catalog, ColumnDef, IndexDef, TableDef
from .core.normalize import NormalizeConfig, normalize
from .core.optimizer import Optimizer, OptimizerConfig
from .errors import ReproError
from .executor import NaiveInterpreter
from .executor.physical import PhysicalExecutor
from .physical import PhysicalOp, explain_physical
from .sql import parse
from .storage import Storage


@dataclass(frozen=True)
class ExecutionMode:
    """One engine configuration (normalization + optimizer switches)."""

    name: str
    normalize_config: NormalizeConfig = field(default_factory=NormalizeConfig)
    optimizer_config: OptimizerConfig = field(default_factory=OptimizerConfig)
    use_naive_interpreter: bool = False


FULL = ExecutionMode("full")

DECORRELATE_ONLY = ExecutionMode(
    "decorrelate_only",
    optimizer_config=OptimizerConfig(
        groupby_reorder=False, local_aggregates=False, segment_apply=False,
        semijoin_rewrites=False))

CORRELATED = ExecutionMode(
    "correlated",
    normalize_config=NormalizeConfig(decorrelate=False),
    optimizer_config=OptimizerConfig(
        groupby_reorder=False, local_aggregates=False, segment_apply=False,
        semijoin_rewrites=False, join_reorder=False))

NAIVE = ExecutionMode("naive", use_naive_interpreter=True)

MODES = {mode.name: mode for mode in (FULL, DECORRELATE_ONLY, CORRELATED,
                                      NAIVE)}


class QueryResult:
    """Rows plus output column names."""

    def __init__(self, names: list[str], rows: list[tuple]) -> None:
        self.names = names
        self.rows = rows

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QueryResult):
            return self.rows == other.rows
        return self.rows == other

    def __repr__(self) -> str:
        return f"QueryResult({self.names}, {len(self.rows)} rows)"


class Database:
    """An embedded SQL database running the paper's optimizer pipeline."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.storage = Storage()
        self._binder = Binder(self.catalog)

    # -- DDL / DML ---------------------------------------------------------------

    def create_table(self, name: str,
                     columns: Sequence[tuple],
                     primary_key: Sequence[str] = (),
                     unique_keys: Sequence[Sequence[str]] = ()) -> TableDef:
        """Create a table.

        ``columns`` is a sequence of ``(name, DataType)`` or
        ``(name, DataType, nullable)`` tuples.
        """
        defs = []
        for spec in columns:
            if len(spec) == 2:
                defs.append(ColumnDef(spec[0], spec[1]))
            else:
                defs.append(ColumnDef(spec[0], spec[1], spec[2]))
        table = TableDef(name, defs, primary_key, unique_keys)
        self.catalog.create_table(table)
        self.storage.create(table)
        return table

    def create_index(self, index_name: str, table_name: str,
                     column_names: Sequence[str],
                     kind: str = "hash") -> IndexDef:
        index = IndexDef(index_name, table_name, tuple(column_names), kind)
        self.catalog.create_index(index)
        self.storage.get(table_name).add_index(index)
        return index

    def create_view(self, name: str, sql: str) -> None:
        """Create a view: a named query expanded (and then normalized and
        optimized) wherever it is referenced.  The definition is validated
        immediately by binding it once."""
        from .sql import parse

        self._binder.bind(parse(sql))  # validate eagerly
        self.catalog.create_view(name, sql)

    def drop_view(self, name: str) -> None:
        self.catalog.drop_view(name)

    def drop_table(self, name: str) -> None:
        """Drop a table, its storage and its indexes."""
        self.catalog.drop_table(name)
        self.storage.drop(name)

    def table_names(self) -> list[str]:
        return [t.name for t in self.catalog.tables()]

    def table_statistics(self, name: str):
        """Current statistics for a stored table (recomputed lazily)."""
        return self.storage.get(name).statistics()

    def insert(self, table_name: str,
               rows: Iterable[Sequence[Any] | dict]) -> int:
        return self.storage.get(table_name).insert_many(rows)

    # -- queries -------------------------------------------------------------------

    def execute(self, sql: str,
                mode: ExecutionMode = FULL) -> QueryResult:
        bound = self._binder.bind(parse(sql))
        if mode.use_naive_interpreter:
            interpreter = NaiveInterpreter(
                lambda name: self.storage.get(name).rows)
            return QueryResult(bound.names, interpreter.run(bound.rel))
        plan = self._plan(bound, mode)
        executor = PhysicalExecutor(self.storage)
        return QueryResult(bound.names, executor.run(plan))

    def explain(self, sql: str, mode: ExecutionMode = FULL,
                costs: bool = False) -> str:
        """Normalized logical tree and chosen physical plan, as text.

        With ``costs=True`` the output ends with the optimizer's estimated
        cost (arbitrary work units) and estimated output rows.
        """
        bound = self._binder.bind(parse(sql))
        normalized = normalize(bound.rel, mode.normalize_config)
        sections = ["-- logical (normalized) --", explain(normalized)]
        if not mode.use_naive_interpreter:
            optimizer = self._optimizer(mode)
            if costs:
                from .core.optimizer import Estimator

                costed = optimizer.optimize_with_cost(normalized)
                sections += ["-- physical --",
                             explain_physical(costed.plan)]
                estimate = Estimator(self._stats_provider).estimate(
                    normalized)
                sections += [
                    "-- estimates --",
                    f"cost: {costed.cost:.1f}",
                    f"rows: {estimate.rows:.1f}",
                ]
            else:
                plan = optimizer.optimize(normalized)
                sections += ["-- physical --", explain_physical(plan)]
        return "\n".join(sections)

    def plan(self, sql: str, mode: ExecutionMode = FULL) -> PhysicalOp:
        bound = self._binder.bind(parse(sql))
        return self._plan(bound, mode)

    def _plan(self, bound: BoundQuery, mode: ExecutionMode) -> PhysicalOp:
        normalized = normalize(bound.rel, mode.normalize_config)
        return self._optimizer(mode).optimize(normalized)

    def _optimizer(self, mode: ExecutionMode) -> Optimizer:
        return Optimizer(self._stats_provider, self._index_provider,
                         mode.optimizer_config)

    # -- optimizer services ------------------------------------------------------

    def _stats_provider(self, table_name: str):
        try:
            return self.storage.get(table_name).statistics()
        except ReproError:
            return None

    def _index_provider(self, table_name: str) -> list[tuple[str, ...]]:
        try:
            table = self.catalog.get_table(table_name)
        except ReproError:
            return []
        candidates = [tuple(key) for key in table.all_keys()]
        for index in self.catalog.indexes_on(table_name):
            candidates.append(tuple(index.column_names))
        return candidates
