"""Derived logical properties of operator trees.

Rewrites in the paper are guarded by logical properties rather than syntax:

* **keys** — identities (7)–(9) require ``R.key``; GroupBy pull-up requires
  the joined relation to have a key (Section 3.1, condition 2);
* **functional dependencies** — filters move around GroupBy only when their
  columns are functionally determined by the grouping columns;
* **null-rejection** — outerjoin simplification (Section 1.2 / [7]) fires
  when a predicate above rejects NULL on columns from the outerjoin's inner
  side, including rejection derived *through* aggregates;
* **max-one-row** — Max1row elision (Section 2.4) and scalar-subquery
  cardinality reasoning.

All functions are pure; they walk the immutable tree on demand.
"""

from __future__ import annotations

from .aggregates import AggregateFunction
from .columns import Column, ColumnSet
from .funcdeps import FDSet
from .relational import (Apply, ConstantScan, Difference, Get, GroupBy,
                         Join, JoinKind, LocalGroupBy, Max1row, Project,
                         RelationalOp, ScalarGroupBy, SegmentApply,
                         SegmentRef, Select, Sort, Top, UnionAll)
from .scalar import (AggregateCall, And, Arithmetic, Case, ColumnRef,
                     Comparison, InList, IsNull, Like, Literal, Negate, Not,
                     Or, ScalarExpr, conjuncts)


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------

def derive_keys(rel: RelationalOp) -> list[frozenset[int]]:
    """Candidate keys (as column-id sets) of the operator's output.

    The result is sound but not complete: every returned set *is* a key;
    further keys may exist.  Minimality is not guaranteed either.
    """
    keys = _derive_keys_raw(rel)
    # De-duplicate and drop supersets of other keys.
    unique = sorted(set(keys), key=len)
    minimal: list[frozenset[int]] = []
    for key in unique:
        if not any(existing <= key for existing in minimal):
            minimal.append(key)
    return minimal


def _derive_keys_raw(rel: RelationalOp) -> list[frozenset[int]]:
    memo_keys = getattr(rel, "memo_keys", None)
    if memo_keys is not None:
        return list(memo_keys)

    if isinstance(rel, Get):
        return [frozenset(c.cid for c in key) for key in rel.key_columns]

    if isinstance(rel, ConstantScan):
        return [frozenset()] if len(rel.rows) <= 1 else []

    if isinstance(rel, (Select, Sort)):
        return derive_keys(rel.children[0])

    if isinstance(rel, Top):
        child_keys = derive_keys(rel.child)
        if rel.count <= 1:
            return [frozenset()]
        return child_keys

    if isinstance(rel, Max1row):
        return [frozenset()]

    if isinstance(rel, Project):
        out_ids = {c.cid for c in rel.output_columns()}
        return [k for k in derive_keys(rel.child) if k <= out_ids]

    if isinstance(rel, ScalarGroupBy):
        return [frozenset()]

    if isinstance(rel, (GroupBy, LocalGroupBy)):
        group_key = frozenset(c.cid for c in rel.group_columns)
        keys = [group_key]
        for child_key in derive_keys(rel.child):
            if child_key <= group_key:
                keys.append(child_key)
        return keys

    if isinstance(rel, Join):
        left_keys = derive_keys(rel.left)
        if rel.kind.left_only_output:
            return left_keys
        right_keys = derive_keys(rel.right)
        return [lk | rk for lk in left_keys for rk in right_keys]

    if isinstance(rel, Apply):
        left_keys = derive_keys(rel.left)
        if rel.kind.left_only_output:
            return left_keys
        right_keys = derive_keys(rel.right)
        return [lk | rk for lk in left_keys for rk in right_keys]

    if isinstance(rel, SegmentApply):
        seg = frozenset(c.cid for c in rel.segment_columns)
        return [seg | rk for rk in derive_keys(rel.right)]

    if isinstance(rel, Difference):
        # Difference output is a subset of the left input (renamed).
        rename = {src.cid: out.cid
                  for src, out in zip(rel.left_map, rel.columns)}
        keys = []
        for key in derive_keys(rel.left):
            if all(cid in rename for cid in key):
                keys.append(frozenset(rename[cid] for cid in key))
        return keys

    if isinstance(rel, (UnionAll, SegmentRef)):
        return []

    return []


def has_key(rel: RelationalOp) -> bool:
    return bool(derive_keys(rel))


def key_within(rel: RelationalOp, columns: ColumnSet) -> frozenset[int] | None:
    """A key of ``rel`` fully contained in ``columns``, if any."""
    ids = columns.ids()
    for key in derive_keys(rel):
        if key <= ids:
            return key
    return None


# ---------------------------------------------------------------------------
# Functional dependencies
# ---------------------------------------------------------------------------

def derive_fds(rel: RelationalOp) -> FDSet:
    """A sound (not complete) FD set holding on the operator's output."""
    memo_fds = getattr(rel, "memo_fds", None)
    if memo_fds is not None:
        return memo_fds

    out_ids = [c.cid for c in rel.output_columns()]

    if isinstance(rel, (Get, ConstantScan, SegmentRef)):
        fds = FDSet()
        for key in derive_keys(rel):
            fds.add(key, out_ids)
        return fds

    if isinstance(rel, Select):
        fds = derive_fds(rel.child).copy()
        _add_predicate_fds(fds, rel.predicate)
        return fds

    if isinstance(rel, (Sort, Top, Max1row)):
        return derive_fds(rel.children[0])

    if isinstance(rel, Project):
        fds = derive_fds(rel.child).copy()
        for col, expr in rel.items:
            used = [c.cid for c in expr.free_columns()]
            fds.add(used, (col.cid,))
        return fds.project(out_ids)

    if isinstance(rel, (GroupBy, LocalGroupBy)):
        fds = derive_fds(rel.child).project(out_ids)
        fds.add([c.cid for c in rel.group_columns], out_ids)
        return fds

    if isinstance(rel, ScalarGroupBy):
        fds = FDSet()
        fds.add((), out_ids)
        return fds

    if isinstance(rel, Join):
        fds = derive_fds(rel.left).copy()
        if rel.kind is JoinKind.INNER:
            fds.add_all(derive_fds(rel.right))
            if rel.predicate is not None:
                _add_predicate_fds(fds, rel.predicate)
        elif not rel.kind.left_only_output:
            # LEFT OUTER: right-side FDs are weakened by NULL padding; only
            # keys-derived dependencies on the combined key stay sound.
            pass
        for key in derive_keys(rel):
            fds.add(key, out_ids)
        return fds

    if isinstance(rel, Apply):
        fds = derive_fds(rel.left).copy()
        for key in derive_keys(rel):
            fds.add(key, out_ids)
        return fds

    if isinstance(rel, SegmentApply):
        fds = derive_fds(rel.right).copy()
        for key in derive_keys(rel):
            fds.add(key, out_ids)
        return fds

    fds = FDSet()
    for key in derive_keys(rel):
        fds.add(key, out_ids)
    return fds


def _add_predicate_fds(fds: FDSet, predicate: ScalarExpr) -> None:
    """Extract FDs implied by a predicate that filters to TRUE rows."""
    for part in conjuncts(predicate):
        if not (isinstance(part, Comparison) and part.op == "="):
            continue
        left, right = part.left, part.right
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            fds.add_equivalence(left.column.cid, right.column.cid)
        elif isinstance(left, ColumnRef) and isinstance(right, Literal):
            fds.add_constant(left.column.cid)
        elif isinstance(right, ColumnRef) and isinstance(left, Literal):
            fds.add_constant(right.column.cid)


def functionally_determines(rel: RelationalOp, determinant: ColumnSet,
                            dependent: ColumnSet) -> bool:
    """Whether ``determinant → dependent`` holds on ``rel``'s output."""
    return derive_fds(rel).determines(determinant.ids(), dependent.ids())


# ---------------------------------------------------------------------------
# Null-rejection
# ---------------------------------------------------------------------------

def strict_columns(expr: ScalarExpr) -> frozenset[int]:
    """Columns whose NULL value forces the expression's value to NULL.

    Sound under-approximation: every returned column has the property.
    """
    if isinstance(expr, ColumnRef):
        return frozenset((expr.column.cid,))
    if isinstance(expr, (Comparison, Arithmetic)):
        return strict_columns(expr.left) | strict_columns(expr.right)
    if isinstance(expr, (Negate, Like, InList)):
        return strict_columns(expr.children[0])
    from .scalar import Extract
    if isinstance(expr, Extract):
        return strict_columns(expr.arg)
    return frozenset()


def null_rejected_columns(predicate: ScalarExpr) -> frozenset[int]:
    """Columns on which the predicate *rejects NULL*.

    A predicate rejects NULL on column ``c`` when it cannot evaluate to TRUE
    on any row where ``c`` is NULL — the trigger for outerjoin→join
    simplification [Galindo-Legaria & Rosenthal 1997].
    """
    if isinstance(predicate, And):
        rejected: frozenset[int] = frozenset()
        for arg in predicate.args:
            rejected |= null_rejected_columns(arg)
        return rejected
    if isinstance(predicate, Or):
        parts = [null_rejected_columns(a) for a in predicate.args]
        result = parts[0]
        for p in parts[1:]:
            result &= p
        return result
    if isinstance(predicate, Not):
        # NOT(e) is TRUE only when e is FALSE; if a NULL column forces e to
        # NULL, NOT(e) is UNKNOWN — rejected.
        return strict_columns(predicate.arg)
    if isinstance(predicate, IsNull):
        if predicate.negated:
            return strict_columns(predicate.arg)
        return frozenset()
    return strict_columns(predicate)


# ---------------------------------------------------------------------------
# Cardinality facts
# ---------------------------------------------------------------------------

def max_one_row(rel: RelationalOp) -> bool:
    """Whether the operator provably emits at most one row per invocation.

    Used to elide Max1row (paper Section 2.4: "the compiler avoids the use
    of Max1row, as long as ... a declared key").  Correlation parameters
    count as bound values: a Select equating every column of a key to a
    constant or an outer parameter passes at most one row.
    """
    if isinstance(rel, (ScalarGroupBy, Max1row)):
        return True
    if isinstance(rel, ConstantScan):
        return len(rel.rows) <= 1
    if isinstance(rel, Top):
        return rel.count <= 1 or max_one_row(rel.child)
    if isinstance(rel, (Sort, Project)):
        return max_one_row(rel.children[0])
    if isinstance(rel, Select):
        if max_one_row(rel.child):
            return True
        bound = _equality_bound_columns(rel)
        keys = derive_keys(rel.child)
        return any(key <= bound for key in keys)
    if isinstance(rel, Join) and rel.kind.left_only_output:
        return max_one_row(rel.left)
    if isinstance(rel, Apply):
        if rel.kind.left_only_output:
            return max_one_row(rel.left)
        return max_one_row(rel.left) and max_one_row(rel.right)
    if isinstance(rel, Join):
        return max_one_row(rel.left) and max_one_row(rel.right)
    if isinstance(rel, GroupBy):
        # One row iff at most one group; only provable via child cardinality.
        return max_one_row(rel.child)
    return False


def _equality_bound_columns(select: Select) -> frozenset[int]:
    """Child columns equated to constants or outer parameters by the filter."""
    child_ids = {c.cid for c in select.child.output_columns()}
    bound: set[int] = set()
    for part in conjuncts(select.predicate):
        if not (isinstance(part, Comparison) and part.op == "="):
            continue
        for this, other in ((part.left, part.right), (part.right, part.left)):
            if not isinstance(this, ColumnRef):
                continue
            if this.column.cid not in child_ids:
                continue
            if isinstance(other, Literal):
                bound.add(this.column.cid)
            elif (isinstance(other, ColumnRef)
                  and other.column.cid not in child_ids):
                bound.add(this.column.cid)  # equated to an outer parameter
    return frozenset(bound)


def never_empty(rel: RelationalOp) -> bool:
    """Whether the operator provably emits at least one row."""
    if isinstance(rel, ScalarGroupBy):
        return True
    if isinstance(rel, ConstantScan):
        return len(rel.rows) >= 1
    if isinstance(rel, (Sort, Max1row, Project)):
        return never_empty(rel.children[0])
    if isinstance(rel, Join) and rel.kind is JoinKind.LEFT_OUTER:
        return never_empty(rel.left)
    if isinstance(rel, Apply) and rel.kind is JoinKind.LEFT_OUTER:
        return never_empty(rel.left)
    return False
