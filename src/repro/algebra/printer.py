"""EXPLAIN-style rendering of operator trees.

``explain`` prints the tree with two-space indentation, descending into
relational subtrees embedded in scalar expressions (the pre-normalization
Figure 3 form) as well as ordinary children.

``plan_signature`` renders the same tree with column ids normalized to their
order of first appearance, so two plans that are identical up to column
identity compare equal — the basis of the syntax-independence tests
(paper Section 1.2).
"""

from __future__ import annotations

import hashlib
import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .relational import RelationalOp


def explain(rel: "RelationalOp") -> str:
    """Human-readable multi-line rendering of an operator tree."""
    lines: list[str] = []
    _render(rel, 0, lines)
    return "\n".join(lines)


def _render(rel: "RelationalOp", depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    lines.append(f"{indent}{rel.label()}")
    for expr in rel.local_expressions():
        for sub in _relational_children(expr):
            lines.append(f"{indent}  [subquery]")
            _render(sub, depth + 2, lines)
    for child in rel.children:
        _render(child, depth + 1, lines)


def _relational_children(expr) -> list:
    """All relational subtrees anywhere inside a scalar expression."""
    found = list(expr.relational_children)
    for child in expr.children:
        found.extend(_relational_children(child))
    return found


_CID_PATTERN = re.compile(r"#(\d+)")


def plan_signature(rel: "RelationalOp") -> str:
    """Rendering with column ids replaced by first-appearance ordinals.

    Two structurally identical plans over distinct column identities (for
    example, the optimized plans of two equivalent SQL formulations) yield
    the same signature.  Physical plans are accepted as well: they print
    themselves (via ``explain_physical``), and their column ids are
    normalized the same way.
    """
    if hasattr(rel, "local_expressions"):
        text = explain(rel)
    else:
        text = repr(rel)
    mapping: dict[str, str] = {}

    def normalize(match: re.Match) -> str:
        cid = match.group(1)
        if cid not in mapping:
            mapping[cid] = f"c{len(mapping) + 1}"
        return "#" + mapping[cid]

    return _CID_PATTERN.sub(normalize, text)


def plan_fingerprint(rel: "RelationalOp") -> str:
    """A short, stable hash of the printed tree.

    Computed over :func:`plan_signature`, so the fingerprint is
    independent of the process-global column-id counter: the same query
    compiled in two processes (or twice in one) fingerprints identically.
    Used by the analyzer's blame reports and by golden-plan tests.
    """
    signature = plan_signature(rel)
    return hashlib.sha256(signature.encode("utf-8")).hexdigest()[:12]
