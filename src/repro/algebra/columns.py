"""Column identity model.

Every table instance in a query — including each copy produced by a rewrite
that duplicates a subtree — is represented by *fresh* :class:`Column` objects
carrying globally unique integer ids.  Expressions reference columns by
identity, never by name, which makes the rewrites of the paper (which move,
copy and merge subtrees) alias-safe: a self-join of ``orders`` has two
distinct column sets even though the names coincide.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from ..concurrency import TrackedLock
from .datatypes import DataType

_COUNTER = itertools.count(1)
_COUNTER_LOCK = TrackedLock("algebra.columns")


def _next_column_id() -> int:
    with _COUNTER_LOCK:
        return next(_COUNTER)


class Column:
    """A uniquely identified column produced somewhere in an operator tree.

    ``name`` is for display only; identity is the integer ``cid``.
    """

    __slots__ = ("cid", "name", "dtype", "nullable")

    def __init__(self, name: str, dtype: DataType, nullable: bool = True,
                 cid: int | None = None) -> None:
        self.cid = _next_column_id() if cid is None else cid
        self.name = name
        self.dtype = dtype
        self.nullable = nullable

    def renamed(self, name: str) -> "Column":
        """A *new* column (fresh id) with the same type but another name."""
        return Column(name, self.dtype, self.nullable)

    def fresh_copy(self) -> "Column":
        """A new column with identical metadata but a fresh id."""
        return Column(self.name, self.dtype, self.nullable)

    def with_nullability(self, nullable: bool) -> "Column":
        """The same column identity, viewed with different nullability.

        Used by property derivation (e.g. the null side of an outerjoin);
        the id is preserved because it is the *same* column.
        """
        clone = Column(self.name, self.dtype, nullable, cid=self.cid)
        return clone

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Column) and other.cid == self.cid

    def __hash__(self) -> int:
        return hash(self.cid)

    def __repr__(self) -> str:
        return f"{self.name}#{self.cid}"


class ColumnSet:
    """An immutable set of columns with set algebra, keyed by column id."""

    __slots__ = ("_by_id",)

    def __init__(self, columns: Iterable[Column] = ()) -> None:
        self._by_id: dict[int, Column] = {c.cid: c for c in columns}

    @classmethod
    def of(cls, *columns: Column) -> "ColumnSet":
        return cls(columns)

    def __contains__(self, column: Column) -> bool:
        return column.cid in self._by_id

    def __iter__(self) -> Iterator[Column]:
        return iter(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    def __bool__(self) -> bool:
        return bool(self._by_id)

    def ids(self) -> frozenset[int]:
        return frozenset(self._by_id)

    def union(self, other: Iterable[Column]) -> "ColumnSet":
        result = ColumnSet()
        result._by_id = dict(self._by_id)
        for c in other:
            result._by_id.setdefault(c.cid, c)
        return result

    def intersection(self, other: "ColumnSet | Iterable[Column]") -> "ColumnSet":
        other_ids = other.ids() if isinstance(other, ColumnSet) else {c.cid for c in other}
        return ColumnSet(c for c in self if c.cid in other_ids)

    def difference(self, other: "ColumnSet | Iterable[Column]") -> "ColumnSet":
        other_ids = other.ids() if isinstance(other, ColumnSet) else {c.cid for c in other}
        return ColumnSet(c for c in self if c.cid not in other_ids)

    def issubset(self, other: "ColumnSet | Iterable[Column]") -> bool:
        other_ids = other.ids() if isinstance(other, ColumnSet) else {c.cid for c in other}
        return all(cid in other_ids for cid in self._by_id)

    def isdisjoint(self, other: "ColumnSet | Iterable[Column]") -> bool:
        other_ids = other.ids() if isinstance(other, ColumnSet) else {c.cid for c in other}
        return not any(cid in other_ids for cid in self._by_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ColumnSet) and other.ids() == self.ids()

    def __hash__(self) -> int:
        return hash(self.ids())

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in sorted(self, key=lambda c: c.cid))
        return f"{{{inner}}}"
