"""Functional dependencies with Armstrong-style closure.

Paper Section 3.1 states the filter/GroupBy reordering condition in terms of
functional determination: *a filter moves around a GroupBy iff all columns it
uses are functionally determined by the grouping columns*.  This module
provides the small FD engine that check rests on.

FDs are stored as ``determinant set → dependent set`` over column ids, plus
"constant" columns (determined by the empty set, e.g. bound by ``col = 42``).
"""

from __future__ import annotations

from typing import Iterable


class FDSet:
    """A mutable set of functional dependencies over column ids."""

    def __init__(self) -> None:
        self._fds: list[tuple[frozenset[int], frozenset[int]]] = []

    def copy(self) -> "FDSet":
        result = FDSet()
        result._fds = list(self._fds)
        return result

    def add(self, determinant: Iterable[int], dependent: Iterable[int]) -> None:
        lhs = frozenset(determinant)
        rhs = frozenset(dependent) - lhs
        if rhs:
            self._fds.append((lhs, rhs))

    def add_constant(self, column: int) -> None:
        """Record that ``column`` has a single value (e.g. ``col = 5``)."""
        self.add((), (column,))

    def add_equivalence(self, a: int, b: int) -> None:
        """Record ``a = b`` (each determines the other)."""
        self.add((a,), (b,))
        self.add((b,), (a,))

    def add_all(self, other: "FDSet") -> None:
        self._fds.extend(other._fds)

    def closure(self, attributes: Iterable[int]) -> frozenset[int]:
        """Attribute-set closure under the stored FDs (fixpoint)."""
        closed = set(attributes)
        changed = True
        while changed:
            changed = False
            for lhs, rhs in self._fds:
                if lhs <= closed and not rhs <= closed:
                    closed |= rhs
                    changed = True
        return frozenset(closed)

    def determines(self, determinant: Iterable[int],
                   dependent: Iterable[int]) -> bool:
        """Whether ``determinant → dependent`` follows from the stored FDs."""
        return frozenset(dependent) <= self.closure(determinant)

    def project(self, columns: Iterable[int]) -> "FDSet":
        """FDs restricted to a column subset (kept sound, not complete:
        stored FDs fully inside the subset survive)."""
        keep = frozenset(columns)
        result = FDSet()
        for lhs, rhs in self._fds:
            if lhs <= keep:
                trimmed = rhs & keep
                if trimmed:
                    result._fds.append((lhs, trimmed))
        return result

    def __len__(self) -> int:
        return len(self._fds)

    def __repr__(self) -> str:
        parts = [f"{set(l) or '{}'}→{set(r)}" for l, r in self._fds]
        return "FDSet(" + "; ".join(parts) + ")"
