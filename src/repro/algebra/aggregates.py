"""Aggregate functions described by abstract properties.

The paper (Sections 1.2 and 3.3) insists on *operating based on abstract
properties of aggregate functions, rather than considering the five standard
SQL aggregates*.  This module is that abstraction:

* ``value_on_empty`` / ``null_on_empty`` — scalar aggregation over an empty
  input (drives the outerjoin rewrite of identity (9) and the computing
  project of Section 3.2);
* ``empty_equals_single_null`` — whether ``agg(∅) = agg({NULL})``, the
  validity condition of identity (9); it fails only for ``count(*)``, which
  is why that identity substitutes ``count(c)`` over a non-nullable column;
* ``splittable`` plus :meth:`AggregateDescriptor.split` — the local/global
  decomposition ``f(∪ Si) = f_g(∪ f_l(Si))`` of Section 3.3, including the
  composite case (``avg``) that decomposes into primitive aggregates and a
  finalizing projection (footnote 3 of the paper);
* ``duplicate_insensitive`` — whether the aggregate ignores duplicates
  (``min``/``max``), which relaxes several reordering conditions.

The same descriptors provide the fold semantics (``initial``/``step``/
``final``) shared by the naive interpreter and the physical executor, so
there is exactly one definition of each aggregate's behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable


class AggregateFunction(enum.Enum):
    COUNT_STAR = "count(*)"
    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SplitPart:
    """One primitive aggregate produced when splitting a composite one.

    ``role`` names the intermediate ("sum", "count", ...) so the finalizer
    can refer to it.
    """

    func: AggregateFunction
    role: str


@dataclass(frozen=True)
class AggregateSplit:
    """Local/global decomposition of an aggregate function.

    ``local`` aggregates run below (over the original argument), ``global_``
    aggregates combine the local results positionally.  ``finalizer`` is
    ``None`` when the single global result *is* the answer; otherwise it is a
    role-keyed recipe evaluated in a projection above the global GroupBy
    (``avg`` finalizes as ``sum / count``).
    """

    local: tuple[SplitPart, ...]
    global_: tuple[SplitPart, ...]
    finalizer: str | None = None


class AggregateDescriptor:
    """Behaviour and algebraic properties of one aggregate function."""

    def __init__(self, func: AggregateFunction, *,
                 value_on_empty: Any,
                 value_on_single_null: Any,
                 duplicate_insensitive: bool,
                 split: AggregateSplit | None) -> None:
        self.func = func
        self.value_on_empty = value_on_empty
        self.value_on_single_null = value_on_single_null
        self.duplicate_insensitive = duplicate_insensitive
        self._split = split

    # -- algebraic properties ------------------------------------------------

    @property
    def null_on_empty(self) -> bool:
        return self.value_on_empty is None

    @property
    def empty_equals_single_null(self) -> bool:
        """Validity condition of identity (9): ``agg(∅) = agg({NULL})``."""
        return self.value_on_empty == self.value_on_single_null and (
            (self.value_on_empty is None) == (self.value_on_single_null is None))

    @property
    def splittable(self) -> bool:
        return self._split is not None

    @property
    def split(self) -> AggregateSplit:
        if self._split is None:
            raise ValueError(f"{self.func} has no local/global decomposition")
        return self._split

    # -- fold semantics --------------------------------------------------------

    def initial(self) -> Any:
        if self.func in (AggregateFunction.COUNT, AggregateFunction.COUNT_STAR):
            return 0
        if self.func is AggregateFunction.AVG:
            return (None, 0)
        return None  # sum/min/max start "no value seen"

    def step(self, state: Any, value: Any) -> Any:
        func = self.func
        if func is AggregateFunction.COUNT_STAR:
            return state + 1
        if func is AggregateFunction.COUNT:
            return state + (0 if value is None else 1)
        if value is None:
            return state
        if func is AggregateFunction.SUM:
            return value if state is None else state + value
        if func is AggregateFunction.MIN:
            return value if state is None else min(state, value)
        if func is AggregateFunction.MAX:
            return value if state is None else max(state, value)
        if func is AggregateFunction.AVG:
            total, count = state
            return (value if total is None else total + value, count + 1)
        raise AssertionError(f"unhandled aggregate {func}")

    def final(self, state: Any) -> Any:
        if self.func is AggregateFunction.AVG:
            total, count = state
            if count == 0:
                return None
            return total / count
        return state

    def merge(self, state: Any, other: Any) -> Any:
        """Combine two partial states (used by spilling-style execution)."""
        func = self.func
        if func in (AggregateFunction.COUNT, AggregateFunction.COUNT_STAR):
            return state + other
        if func is AggregateFunction.AVG:
            total_a, count_a = state
            total_b, count_b = other
            if total_a is None:
                total = total_b
            elif total_b is None:
                total = total_a
            else:
                total = total_a + total_b
            return (total, count_a + count_b)
        if other is None:
            return state
        if state is None:
            return other
        if func is AggregateFunction.SUM:
            return state + other
        if func is AggregateFunction.MIN:
            return min(state, other)
        if func is AggregateFunction.MAX:
            return max(state, other)
        raise AssertionError(f"unhandled aggregate {func}")


_SIMPLE_SPLITS = {
    AggregateFunction.SUM: AggregateSplit(
        (SplitPart(AggregateFunction.SUM, "sum"),),
        (SplitPart(AggregateFunction.SUM, "sum"),)),
    AggregateFunction.MIN: AggregateSplit(
        (SplitPart(AggregateFunction.MIN, "min"),),
        (SplitPart(AggregateFunction.MIN, "min"),)),
    AggregateFunction.MAX: AggregateSplit(
        (SplitPart(AggregateFunction.MAX, "max"),),
        (SplitPart(AggregateFunction.MAX, "max"),)),
    AggregateFunction.COUNT: AggregateSplit(
        (SplitPart(AggregateFunction.COUNT, "count"),),
        (SplitPart(AggregateFunction.SUM, "count"),)),
    AggregateFunction.COUNT_STAR: AggregateSplit(
        (SplitPart(AggregateFunction.COUNT_STAR, "count"),),
        (SplitPart(AggregateFunction.SUM, "count"),)),
    AggregateFunction.AVG: AggregateSplit(
        (SplitPart(AggregateFunction.SUM, "sum"),
         SplitPart(AggregateFunction.COUNT, "count")),
        (SplitPart(AggregateFunction.SUM, "sum"),
         SplitPart(AggregateFunction.SUM, "count")),
        finalizer="sum/count"),
}

DESCRIPTORS: dict[AggregateFunction, AggregateDescriptor] = {
    AggregateFunction.COUNT_STAR: AggregateDescriptor(
        AggregateFunction.COUNT_STAR,
        value_on_empty=0, value_on_single_null=1,
        duplicate_insensitive=False,
        split=_SIMPLE_SPLITS[AggregateFunction.COUNT_STAR]),
    AggregateFunction.COUNT: AggregateDescriptor(
        AggregateFunction.COUNT,
        value_on_empty=0, value_on_single_null=0,
        duplicate_insensitive=False,
        split=_SIMPLE_SPLITS[AggregateFunction.COUNT]),
    AggregateFunction.SUM: AggregateDescriptor(
        AggregateFunction.SUM,
        value_on_empty=None, value_on_single_null=None,
        duplicate_insensitive=False,
        split=_SIMPLE_SPLITS[AggregateFunction.SUM]),
    AggregateFunction.MIN: AggregateDescriptor(
        AggregateFunction.MIN,
        value_on_empty=None, value_on_single_null=None,
        duplicate_insensitive=True,
        split=_SIMPLE_SPLITS[AggregateFunction.MIN]),
    AggregateFunction.MAX: AggregateDescriptor(
        AggregateFunction.MAX,
        value_on_empty=None, value_on_single_null=None,
        duplicate_insensitive=True,
        split=_SIMPLE_SPLITS[AggregateFunction.MAX]),
    AggregateFunction.AVG: AggregateDescriptor(
        AggregateFunction.AVG,
        value_on_empty=None, value_on_single_null=None,
        duplicate_insensitive=False,
        split=_SIMPLE_SPLITS[AggregateFunction.AVG]),
}


def descriptor(func: AggregateFunction) -> AggregateDescriptor:
    """The :class:`AggregateDescriptor` for ``func``."""
    return DESCRIPTORS[func]
