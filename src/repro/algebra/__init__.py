"""Relational algebra substrate: columns, types, expressions, operators.

This package provides the algebra the whole reproduction is written in —
the standard bag-oriented relational operators plus the paper's higher-order
constructs (``Apply``, ``SegmentApply``), the scalar expression language with
SQL three-valued logic, and derived logical properties (keys, functional
dependencies, null-rejection, correlation analysis).
"""

from .aggregates import (AggregateDescriptor, AggregateFunction,
                         AggregateSplit, descriptor)
from .columns import Column, ColumnSet
from .datatypes import (DataType, Interval, sql_and, sql_compare, sql_not,
                        sql_or)
from .funcdeps import FDSet
from .printer import explain, plan_fingerprint, plan_signature
from .properties import (derive_fds, derive_keys, functionally_determines,
                         has_key, key_within, max_one_row, never_empty,
                         null_rejected_columns, strict_columns)
from .relational import (Apply, ConstantScan, Difference, Get, GroupBy, Join,
                         JoinKind, LocalGroupBy, Max1row, Project,
                         RelationalOp, ScalarGroupBy, SegmentApply,
                         SegmentRef, Select, Sort, Top, UnionAll,
                         clone_with_fresh_columns, collect_nodes,
                         substitute_outer_columns, transform_bottom_up)
from .scalar import (AggregateCall, And, Arithmetic, Case, ColumnRef,
                     Comparison, ExistsSubquery, Extract, InList,
                     InSubquery, IsNull, Like, Literal, Negate, Not, Or,
                     Parameter, QuantifiedComparison, ScalarExpr,
                     ScalarSubquery, column_equalities, conjunction,
                     conjuncts, disjuncts, equals, parameter_slot)

__all__ = [
    "AggregateCall", "AggregateDescriptor", "AggregateFunction",
    "AggregateSplit", "And", "Apply", "Arithmetic", "Case", "Column",
    "ColumnRef", "ColumnSet", "Comparison", "ConstantScan", "DataType",
    "Difference", "ExistsSubquery", "Extract", "FDSet", "Get", "GroupBy",
    "InList", "disjuncts",
    "InSubquery", "Interval", "IsNull", "Join", "JoinKind", "Like",
    "Literal", "LocalGroupBy", "Max1row", "Negate", "Not", "Or", "Project",
    "Parameter", "parameter_slot",
    "QuantifiedComparison", "RelationalOp", "ScalarExpr", "ScalarGroupBy",
    "ScalarSubquery", "SegmentApply", "SegmentRef", "Select", "Sort", "Top",
    "UnionAll", "clone_with_fresh_columns", "collect_nodes",
    "column_equalities", "conjunction", "conjuncts", "derive_fds",
    "derive_keys", "descriptor", "equals", "explain",
    "functionally_determines", "has_key", "key_within", "max_one_row",
    "never_empty", "null_rejected_columns", "plan_fingerprint",
    "plan_signature",
    "sql_and", "sql_compare", "sql_not", "sql_or", "strict_columns",
    "substitute_outer_columns", "transform_bottom_up",
]
