"""Scalar expression trees.

Two families of nodes live here:

* ordinary scalar operators (column references, literals, comparisons,
  three-valued AND/OR/NOT, arithmetic, CASE, IS NULL, LIKE, IN-list), and
* *relational-valued* scalar operators — :class:`ScalarSubquery`,
  :class:`ExistsSubquery`, :class:`InSubquery` and
  :class:`QuantifiedComparison` — whose child is a relational operator tree.

The second family is exactly the mutual-recursion representation of paper
Section 2.1 (Figure 3): scalar operators may have relational subexpressions
as children.  Normalization eliminates them by introducing ``Apply``; after
normalization a well-formed plan contains only the first family.

Expressions are immutable.  Structural helpers (``children`` /
``with_children`` / ``substitute_columns``) give rewrites a uniform way to
rebuild trees, and ``free_columns`` reports the columns an expression reads —
the basis of the correlation (outer-reference) analysis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from .aggregates import AggregateFunction, descriptor
from .columns import Column, ColumnSet
from .datatypes import DataType, infer_literal_type

if TYPE_CHECKING:  # pragma: no cover
    from .relational import RelationalOp


class ScalarExpr:
    """Base class of all scalar expression nodes."""

    __slots__ = ()

    # -- structure ----------------------------------------------------------

    @property
    def children(self) -> tuple["ScalarExpr", ...]:
        return ()

    def with_children(self, children: Sequence["ScalarExpr"]) -> "ScalarExpr":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    @property
    def relational_children(self) -> tuple["RelationalOp", ...]:
        """Relational subtrees (non-empty only pre-normalization)."""
        return ()

    def contains_subquery(self) -> bool:
        if self.relational_children:
            return True
        return any(c.contains_subquery() for c in self.children)

    # -- typing ---------------------------------------------------------------

    @property
    def dtype(self) -> DataType:
        raise NotImplementedError

    @property
    def nullable(self) -> bool:
        return True

    # -- analysis --------------------------------------------------------------

    def free_columns(self) -> ColumnSet:
        """All columns this expression reads (including inside subqueries)."""
        result = ColumnSet()
        for child in self.children:
            result = result.union(child.free_columns())
        for rel in self.relational_children:
            result = result.union(rel.outer_references())
        return result

    def substitute_columns(self, mapping: Mapping[int, "ScalarExpr"]) -> "ScalarExpr":
        """Replace column references by ``mapping[cid]`` where present."""
        new_children = tuple(c.substitute_columns(mapping) for c in self.children)
        if all(n is o for n, o in zip(new_children, self.children)):
            return self
        return self.with_children(new_children)

    def remap_columns(self, mapping: Mapping[int, Column]) -> "ScalarExpr":
        """Replace column references by other columns (id-level rename)."""
        return self.substitute_columns(
            {cid: ColumnRef(col) for cid, col in mapping.items()})

    # -- equality ---------------------------------------------------------------

    def _key(self) -> tuple:
        """Structural identity key; subclasses extend it with local fields."""
        return (type(self).__name__,) + tuple(c._key() for c in self.children)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ScalarExpr) and other._key() == self._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return self.sql()

    def sql(self) -> str:
        """Best-effort SQL-ish rendering for EXPLAIN output."""
        raise NotImplementedError


class ColumnRef(ScalarExpr):
    """Reference to a column by identity."""

    __slots__ = ("column",)

    def __init__(self, column: Column) -> None:
        self.column = column

    @property
    def dtype(self) -> DataType:
        return self.column.dtype

    @property
    def nullable(self) -> bool:
        return self.column.nullable

    def free_columns(self) -> ColumnSet:
        return ColumnSet.of(self.column)

    def substitute_columns(self, mapping: Mapping[int, ScalarExpr]) -> ScalarExpr:
        return mapping.get(self.column.cid, self)

    def _key(self) -> tuple:
        return ("col", self.column.cid)

    def sql(self) -> str:
        return repr(self.column)


class Literal(ScalarExpr):
    """A constant value (``None`` is SQL NULL)."""

    __slots__ = ("value", "_dtype")

    def __init__(self, value: Any, dtype: DataType | None = None) -> None:
        self.value = value
        self._dtype = dtype if dtype is not None else infer_literal_type(value)

    @property
    def dtype(self) -> DataType:
        return self._dtype

    @property
    def nullable(self) -> bool:
        return self.value is None

    def _key(self) -> tuple:
        return ("lit", self.value, self._dtype)

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


TRUE = Literal(True)
FALSE = Literal(False)
NULL_BOOLEAN = Literal(None, DataType.BOOLEAN)


class Parameter(ScalarExpr):
    """A query parameter placeholder (``?`` or ``:name``).

    The value is supplied at execution time; within one execution the slot
    is a constant, so rewrites may treat it like a literal of unknown value
    (it reads no columns and has no side effects) — but constant folding
    must never evaluate it at plan time, which falls out of it not being a
    :class:`Literal`.  The type is deferred (:attr:`DataType.UNKNOWN`).
    """

    __slots__ = ("index", "name")

    def __init__(self, index: int, name: str | None = None) -> None:
        if index < 0:
            raise ValueError("parameter index must be non-negative")
        self.index = index
        self.name = name

    @property
    def dtype(self) -> DataType:
        return DataType.UNKNOWN

    @property
    def nullable(self) -> bool:
        return True  # NULL may be bound

    def _key(self) -> tuple:
        return ("param", self.index)

    def sql(self) -> str:
        return f":{self.name}" if self.name is not None else f"?{self.index}"


def parameter_slot(index: int) -> int:
    """Key of parameter ``index`` in an execution environment.

    Execution environments map column ids (positive integers) to values;
    parameter slots share the mapping under negative keys so the executors
    need no second lookup structure.
    """
    return -1 - index


class Comparison(ScalarExpr):
    """Binary comparison with SQL NULL propagation."""

    __slots__ = ("op", "left", "right")

    VALID_OPS = ("=", "<>", "<", "<=", ">", ">=")

    def __init__(self, op: str, left: ScalarExpr, right: ScalarExpr) -> None:
        if op not in self.VALID_OPS:
            raise ValueError(f"invalid comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[ScalarExpr]) -> "Comparison":
        left, right = children
        return Comparison(self.op, left, right)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    @property
    def nullable(self) -> bool:
        return self.left.nullable or self.right.nullable

    def _key(self) -> tuple:
        return ("cmp", self.op, self.left._key(), self.right._key())

    def sql(self) -> str:
        return f"{self.left.sql()} {self.op} {self.right.sql()}"


class And(ScalarExpr):
    """N-ary three-valued conjunction."""

    __slots__ = ("args",)

    def __init__(self, args: Iterable[ScalarExpr]) -> None:
        self.args = tuple(args)
        if len(self.args) < 1:
            raise ValueError("And requires at least one argument")

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return self.args

    def with_children(self, children: Sequence[ScalarExpr]) -> "And":
        return And(children)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    @property
    def nullable(self) -> bool:
        return any(a.nullable for a in self.args)

    def _key(self) -> tuple:
        return ("and",) + tuple(a._key() for a in self.args)

    def sql(self) -> str:
        return "(" + " AND ".join(a.sql() for a in self.args) + ")"


class Or(ScalarExpr):
    """N-ary three-valued disjunction."""

    __slots__ = ("args",)

    def __init__(self, args: Iterable[ScalarExpr]) -> None:
        self.args = tuple(args)
        if len(self.args) < 1:
            raise ValueError("Or requires at least one argument")

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return self.args

    def with_children(self, children: Sequence[ScalarExpr]) -> "Or":
        return Or(children)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    @property
    def nullable(self) -> bool:
        return any(a.nullable for a in self.args)

    def _key(self) -> tuple:
        return ("or",) + tuple(a._key() for a in self.args)

    def sql(self) -> str:
        return "(" + " OR ".join(a.sql() for a in self.args) + ")"


class Not(ScalarExpr):
    """Three-valued negation."""

    __slots__ = ("arg",)

    def __init__(self, arg: ScalarExpr) -> None:
        self.arg = arg

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.arg,)

    def with_children(self, children: Sequence[ScalarExpr]) -> "Not":
        (arg,) = children
        return Not(arg)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    @property
    def nullable(self) -> bool:
        return self.arg.nullable

    def _key(self) -> tuple:
        return ("not", self.arg._key())

    def sql(self) -> str:
        return f"NOT ({self.arg.sql()})"


class IsNull(ScalarExpr):
    """``expr IS [NOT] NULL`` — never yields UNKNOWN."""

    __slots__ = ("arg", "negated")

    def __init__(self, arg: ScalarExpr, negated: bool = False) -> None:
        self.arg = arg
        self.negated = negated

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.arg,)

    def with_children(self, children: Sequence[ScalarExpr]) -> "IsNull":
        (arg,) = children
        return IsNull(arg, self.negated)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    @property
    def nullable(self) -> bool:
        return False

    def _key(self) -> tuple:
        return ("isnull", self.negated, self.arg._key())

    def sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.arg.sql()} {suffix}"


class Arithmetic(ScalarExpr):
    """Binary arithmetic (+ - * /) with NULL propagation."""

    __slots__ = ("op", "left", "right")

    VALID_OPS = ("+", "-", "*", "/")

    def __init__(self, op: str, left: ScalarExpr, right: ScalarExpr) -> None:
        if op not in self.VALID_OPS:
            raise ValueError(f"invalid arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[ScalarExpr]) -> "Arithmetic":
        left, right = children
        return Arithmetic(self.op, left, right)

    @property
    def dtype(self) -> DataType:
        left, right = self.left.dtype, self.right.dtype
        if DataType.UNKNOWN in (left, right):
            return DataType.UNKNOWN
        if DataType.INTERVAL in (left, right):
            return left if right is DataType.INTERVAL else right
        if left is DataType.DATE and right is DataType.DATE:
            return DataType.INTEGER  # date difference in days
        if self.op == "/":
            return DataType.FLOAT
        if DataType.FLOAT in (left, right):
            return DataType.FLOAT
        if DataType.DECIMAL in (left, right):
            return DataType.DECIMAL
        return left

    @property
    def nullable(self) -> bool:
        return self.left.nullable or self.right.nullable

    def _key(self) -> tuple:
        return ("arith", self.op, self.left._key(), self.right._key())

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


class Negate(ScalarExpr):
    """Unary minus."""

    __slots__ = ("arg",)

    def __init__(self, arg: ScalarExpr) -> None:
        self.arg = arg

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.arg,)

    def with_children(self, children: Sequence[ScalarExpr]) -> "Negate":
        (arg,) = children
        return Negate(arg)

    @property
    def dtype(self) -> DataType:
        return self.arg.dtype

    @property
    def nullable(self) -> bool:
        return self.arg.nullable

    def _key(self) -> tuple:
        return ("neg", self.arg._key())

    def sql(self) -> str:
        return f"(-{self.arg.sql()})"


class Case(ScalarExpr):
    """Searched CASE.

    ``whens`` is a sequence of (condition, result) pairs; ``otherwise`` is
    the ELSE branch (NULL when absent).  Evaluation is lazy — only the
    selected branch runs — which matters for paper Section 2.4's
    "conditional scalar execution" discussion.
    """

    __slots__ = ("whens", "otherwise")

    def __init__(self, whens: Sequence[tuple[ScalarExpr, ScalarExpr]],
                 otherwise: ScalarExpr | None = None) -> None:
        if not whens:
            raise ValueError("CASE requires at least one WHEN")
        self.whens = tuple((c, v) for c, v in whens)
        self.otherwise = otherwise

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        flat: list[ScalarExpr] = []
        for cond, value in self.whens:
            flat.append(cond)
            flat.append(value)
        if self.otherwise is not None:
            flat.append(self.otherwise)
        return tuple(flat)

    def with_children(self, children: Sequence[ScalarExpr]) -> "Case":
        n = len(self.whens)
        whens = [(children[2 * i], children[2 * i + 1]) for i in range(n)]
        otherwise = children[2 * n] if self.otherwise is not None else None
        return Case(whens, otherwise)

    @property
    def dtype(self) -> DataType:
        return self.whens[0][1].dtype

    @property
    def nullable(self) -> bool:
        if self.otherwise is None:
            return True
        branches = [v for _, v in self.whens] + [self.otherwise]
        return any(b.nullable for b in branches)

    def _key(self) -> tuple:
        parts = tuple((c._key(), v._key()) for c, v in self.whens)
        other = self.otherwise._key() if self.otherwise is not None else None
        return ("case", parts, other)

    def sql(self) -> str:
        whens = " ".join(f"WHEN {c.sql()} THEN {v.sql()}" for c, v in self.whens)
        tail = f" ELSE {self.otherwise.sql()}" if self.otherwise is not None else ""
        return f"CASE {whens}{tail} END"


class Extract(ScalarExpr):
    """``extract(year|month|day from date_expr)`` — NULL-propagating."""

    __slots__ = ("part", "arg")

    VALID_PARTS = ("year", "month", "day")

    def __init__(self, part: str, arg: ScalarExpr) -> None:
        if part not in self.VALID_PARTS:
            raise ValueError(f"invalid extract part {part!r}")
        self.part = part
        self.arg = arg

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.arg,)

    def with_children(self, children: Sequence[ScalarExpr]) -> "Extract":
        (arg,) = children
        return Extract(self.part, arg)

    @property
    def dtype(self) -> DataType:
        return DataType.INTEGER

    @property
    def nullable(self) -> bool:
        return self.arg.nullable

    def _key(self) -> tuple:
        return ("extract", self.part, self.arg._key())

    def sql(self) -> str:
        return f"extract({self.part} from {self.arg.sql()})"


class Like(ScalarExpr):
    """SQL LIKE with %/_ wildcards against a constant pattern."""

    __slots__ = ("arg", "pattern", "negated")

    def __init__(self, arg: ScalarExpr, pattern: str, negated: bool = False) -> None:
        self.arg = arg
        self.pattern = pattern
        self.negated = negated

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.arg,)

    def with_children(self, children: Sequence[ScalarExpr]) -> "Like":
        (arg,) = children
        return Like(arg, self.pattern, self.negated)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    @property
    def nullable(self) -> bool:
        return self.arg.nullable

    def _key(self) -> tuple:
        return ("like", self.pattern, self.negated, self.arg._key())

    def sql(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.arg.sql()} {op} '{self.pattern}'"


class InList(ScalarExpr):
    """``expr [NOT] IN (v1, v2, ...)`` over constant values."""

    __slots__ = ("arg", "values", "negated")

    def __init__(self, arg: ScalarExpr, values: Sequence[Any],
                 negated: bool = False) -> None:
        self.arg = arg
        self.values = tuple(values)
        self.negated = negated

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.arg,)

    def with_children(self, children: Sequence[ScalarExpr]) -> "InList":
        (arg,) = children
        return InList(arg, self.values, self.negated)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    @property
    def nullable(self) -> bool:
        return self.arg.nullable or any(v is None for v in self.values)

    def _key(self) -> tuple:
        return ("inlist", self.values, self.negated, self.arg._key())

    def sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        inner = ", ".join(Literal(v).sql() for v in self.values)
        return f"{self.arg.sql()} {op} ({inner})"


class AggregateCall(ScalarExpr):
    """An aggregate function application.

    Valid only as an item of a GroupBy-family operator, never inside an
    arbitrary scalar tree (the binder enforces this).  ``argument`` is
    ``None`` exactly for ``count(*)``.
    """

    __slots__ = ("func", "argument", "distinct")

    def __init__(self, func: AggregateFunction,
                 argument: ScalarExpr | None = None,
                 distinct: bool = False) -> None:
        if (argument is None) != (func is AggregateFunction.COUNT_STAR):
            raise ValueError("count(*) takes no argument; other aggregates need one")
        self.func = func
        self.argument = argument
        self.distinct = distinct

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return () if self.argument is None else (self.argument,)

    def with_children(self, children: Sequence[ScalarExpr]) -> "AggregateCall":
        if self.argument is None:
            if children:
                raise ValueError("count(*) takes no children")
            return self
        (arg,) = children
        return AggregateCall(self.func, arg, self.distinct)

    @property
    def descriptor(self):
        return descriptor(self.func)

    @property
    def dtype(self) -> DataType:
        if self.func in (AggregateFunction.COUNT, AggregateFunction.COUNT_STAR):
            return DataType.INTEGER
        if self.func is AggregateFunction.AVG:
            return DataType.FLOAT
        assert self.argument is not None
        return self.argument.dtype

    @property
    def nullable(self) -> bool:
        if self.func in (AggregateFunction.COUNT, AggregateFunction.COUNT_STAR):
            return False
        return True  # sum/min/max/avg can yield NULL on empty/all-NULL groups

    def _key(self) -> tuple:
        arg = self.argument._key() if self.argument is not None else None
        return ("agg", self.func, self.distinct, arg)

    def sql(self) -> str:
        if self.func is AggregateFunction.COUNT_STAR:
            return "count(*)"
        prefix = "distinct " if self.distinct else ""
        assert self.argument is not None
        return f"{self.func.value}({prefix}{self.argument.sql()})"


# ---------------------------------------------------------------------------
# Relational-valued scalar operators (pre-normalization only)
# ---------------------------------------------------------------------------

class RelationalScalarExpr(ScalarExpr):
    """Base for scalar nodes holding a relational subtree."""

    __slots__ = ()


class ScalarSubquery(RelationalScalarExpr):
    """A subquery used as a scalar value (must yield ≤ 1 row, 1 column)."""

    __slots__ = ("query",)

    def __init__(self, query: "RelationalOp") -> None:
        self.query = query

    @property
    def relational_children(self) -> tuple["RelationalOp", ...]:
        return (self.query,)

    @property
    def dtype(self) -> DataType:
        return self.query.output_columns()[0].dtype

    def _key(self) -> tuple:
        return ("scalar_subquery", id(self.query))

    def substitute_columns(self, mapping: Mapping[int, ScalarExpr]) -> ScalarExpr:
        rewritten = _substitute_in_relation(self.query, mapping)
        if rewritten is self.query:
            return self
        return ScalarSubquery(rewritten)

    def sql(self) -> str:
        return "SUBQUERY(...)"


class ExistsSubquery(RelationalScalarExpr):
    """``[NOT] EXISTS (subquery)``."""

    __slots__ = ("query", "negated")

    def __init__(self, query: "RelationalOp", negated: bool = False) -> None:
        self.query = query
        self.negated = negated

    @property
    def relational_children(self) -> tuple["RelationalOp", ...]:
        return (self.query,)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    @property
    def nullable(self) -> bool:
        return False

    def _key(self) -> tuple:
        return ("exists", self.negated, id(self.query))

    def substitute_columns(self, mapping: Mapping[int, ScalarExpr]) -> ScalarExpr:
        rewritten = _substitute_in_relation(self.query, mapping)
        if rewritten is self.query:
            return self
        return ExistsSubquery(rewritten, self.negated)

    def sql(self) -> str:
        return ("NOT " if self.negated else "") + "EXISTS(...)"


class InSubquery(RelationalScalarExpr):
    """``expr [NOT] IN (subquery)`` with full 3VL semantics."""

    __slots__ = ("needle", "query", "negated")

    def __init__(self, needle: ScalarExpr, query: "RelationalOp",
                 negated: bool = False) -> None:
        self.needle = needle
        self.query = query
        self.negated = negated

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.needle,)

    def with_children(self, children: Sequence[ScalarExpr]) -> "InSubquery":
        (needle,) = children
        return InSubquery(needle, self.query, self.negated)

    @property
    def relational_children(self) -> tuple["RelationalOp", ...]:
        return (self.query,)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    def _key(self) -> tuple:
        return ("in_subquery", self.negated, self.needle._key(), id(self.query))

    def substitute_columns(self, mapping: Mapping[int, ScalarExpr]) -> ScalarExpr:
        needle = self.needle.substitute_columns(mapping)
        rewritten = _substitute_in_relation(self.query, mapping)
        if needle is self.needle and rewritten is self.query:
            return self
        return InSubquery(needle, rewritten, self.negated)

    def sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"{self.needle.sql()} {op} (SUBQUERY)"


class QuantifiedComparison(RelationalScalarExpr):
    """``expr op ANY|ALL (subquery)``."""

    __slots__ = ("op", "quantifier", "needle", "query")

    def __init__(self, op: str, quantifier: str, needle: ScalarExpr,
                 query: "RelationalOp") -> None:
        if quantifier not in ("ANY", "ALL"):
            raise ValueError(f"invalid quantifier {quantifier!r}")
        if op not in Comparison.VALID_OPS:
            raise ValueError(f"invalid comparison operator {op!r}")
        self.op = op
        self.quantifier = quantifier
        self.needle = needle
        self.query = query

    @property
    def children(self) -> tuple[ScalarExpr, ...]:
        return (self.needle,)

    def with_children(self, children: Sequence[ScalarExpr]) -> "QuantifiedComparison":
        (needle,) = children
        return QuantifiedComparison(self.op, self.quantifier, needle, self.query)

    @property
    def relational_children(self) -> tuple["RelationalOp", ...]:
        return (self.query,)

    @property
    def dtype(self) -> DataType:
        return DataType.BOOLEAN

    def _key(self) -> tuple:
        return ("quantified", self.op, self.quantifier,
                self.needle._key(), id(self.query))

    def substitute_columns(self, mapping: Mapping[int, ScalarExpr]) -> ScalarExpr:
        needle = self.needle.substitute_columns(mapping)
        rewritten = _substitute_in_relation(self.query, mapping)
        if needle is self.needle and rewritten is self.query:
            return self
        return QuantifiedComparison(self.op, self.quantifier, needle, rewritten)

    def sql(self) -> str:
        return f"{self.needle.sql()} {self.op} {self.quantifier} (SUBQUERY)"


def _substitute_in_relation(rel: "RelationalOp",
                            mapping: Mapping[int, ScalarExpr]) -> "RelationalOp":
    """Apply a column substitution to the *outer references* of a subquery."""
    from .relational import substitute_outer_columns  # local import: cycle
    return substitute_outer_columns(rel, mapping)


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def conjunction(parts: Iterable[ScalarExpr]) -> ScalarExpr:
    """AND together ``parts``, flattening nested Ands; empty → TRUE."""
    flat: list[ScalarExpr] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.args)
        elif isinstance(part, Literal) and part.value is True:
            continue
        else:
            flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def conjuncts(expr: ScalarExpr) -> list[ScalarExpr]:
    """Split an expression into top-level AND conjuncts."""
    if isinstance(expr, And):
        result: list[ScalarExpr] = []
        for arg in expr.args:
            result.extend(conjuncts(arg))
        return result
    return [expr]


def disjuncts(expr: ScalarExpr) -> list[ScalarExpr]:
    """Split an expression into top-level OR disjuncts (flattening)."""
    if isinstance(expr, Or):
        result: list[ScalarExpr] = []
        for arg in expr.args:
            result.extend(disjuncts(arg))
        return result
    return [expr]


def equals(left: ScalarExpr | Column, right: ScalarExpr | Column) -> Comparison:
    """Equality comparison, lifting bare columns to references."""
    if isinstance(left, Column):
        left = ColumnRef(left)
    if isinstance(right, Column):
        right = ColumnRef(right)
    return Comparison("=", left, right)


def column_equalities(predicate: ScalarExpr) -> list[tuple[Column, Column]]:
    """Extract top-level ``col = col`` conjuncts from a predicate."""
    pairs: list[tuple[Column, Column]] = []
    for part in conjuncts(predicate):
        if (isinstance(part, Comparison) and part.op == "="
                and isinstance(part.left, ColumnRef)
                and isinstance(part.right, ColumnRef)):
            pairs.append((part.left.column, part.right.column))
    return pairs
