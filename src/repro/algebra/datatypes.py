"""SQL data types and three-valued logic primitives.

SQL NULL is represented as Python ``None`` throughout the engine.  Boolean
expressions therefore evaluate to one of three values: ``True``, ``False`` or
``None`` (UNKNOWN).  The helpers in this module implement the SQL-92 truth
tables and NULL-propagating scalar operations; every expression evaluator and
every rewrite that reasons about null-rejection builds on them.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any


class Interval:
    """A SQL interval of whole months and/or days.

    Month arithmetic follows SQL convention: the day-of-month is clamped to
    the length of the target month (Jan 31 + 1 month = Feb 28/29).
    """

    __slots__ = ("months", "days")

    def __init__(self, months: int = 0, days: int = 0) -> None:
        self.months = months
        self.days = days

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Interval)
                and other.months == self.months and other.days == self.days)

    def __hash__(self) -> int:
        return hash((self.months, self.days))

    def __neg__(self) -> "Interval":
        return Interval(-self.months, -self.days)

    def __repr__(self) -> str:
        return f"interval({self.months} months, {self.days} days)"

    def add_to(self, date: datetime.date) -> datetime.date:
        if self.months:
            total = date.year * 12 + (date.month - 1) + self.months
            year, month = divmod(total, 12)
            month += 1
            day = min(date.day, _days_in_month(year, month))
            date = datetime.date(year, month, day)
        if self.days:
            date = date + datetime.timedelta(days=self.days)
        return date


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = datetime.date(year + 1, 1, 1)
    else:
        nxt = datetime.date(year, month + 1, 1)
    return (nxt - datetime.timedelta(days=1)).day


class DataType(enum.Enum):
    """The SQL types supported by the engine.

    ``DECIMAL`` values are carried as Python floats: the reproduction targets
    plan-shape fidelity, not money-grade arithmetic.
    """

    INTEGER = "integer"
    FLOAT = "float"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    DATE = "date"
    BOOLEAN = "boolean"
    INTERVAL = "interval"
    #: Deferred typing: query parameters (``?`` / ``:name``) carry UNKNOWN
    #: until a concrete value is bound at execution time; type checks treat
    #: UNKNOWN as compatible with anything.
    UNKNOWN = "unknown"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT, DataType.DECIMAL)

    @property
    def is_comparable(self) -> bool:
        return True


#: Python value classes accepted for each SQL type.
_PYTHON_CLASSES = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (int, float),
    DataType.DECIMAL: (int, float),
    DataType.VARCHAR: (str,),
    DataType.DATE: (datetime.date,),
    DataType.BOOLEAN: (bool,),
    DataType.INTERVAL: (Interval,),
}


def value_matches_type(value: Any, dtype: DataType) -> bool:
    """Return True when ``value`` is NULL or an instance of ``dtype``."""
    if value is None:
        return True
    if dtype is DataType.UNKNOWN:
        return True
    if dtype is DataType.BOOLEAN:
        # bool is a subclass of int; check it first and exclusively.
        return isinstance(value, bool)
    if isinstance(value, bool):
        return False
    return isinstance(value, _PYTHON_CLASSES[dtype])


def infer_literal_type(value: Any) -> DataType:
    """Infer the SQL type of a Python literal value.

    NULL literals default to VARCHAR; the binder retypes them from context
    when possible.
    """
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.VARCHAR
    if isinstance(value, datetime.date):
        return DataType.DATE
    if isinstance(value, Interval):
        return DataType.INTERVAL
    if value is None:
        return DataType.VARCHAR
    raise TypeError(f"unsupported literal value {value!r}")


def common_supertype(a: DataType, b: DataType) -> DataType:
    """Result type of combining operands of types ``a`` and ``b``."""
    if a is DataType.UNKNOWN:
        return b
    if b is DataType.UNKNOWN:
        return a
    if a == b:
        return a
    numeric_order = [DataType.INTEGER, DataType.DECIMAL, DataType.FLOAT]
    if a.is_numeric and b.is_numeric:
        return max(a, b, key=numeric_order.index)
    raise TypeError(f"no common supertype for {a} and {b}")


# ---------------------------------------------------------------------------
# Three-valued logic
# ---------------------------------------------------------------------------

def sql_and(a: bool | None, b: bool | None) -> bool | None:
    """SQL AND: FALSE dominates, then UNKNOWN."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a: bool | None, b: bool | None) -> bool | None:
    """SQL OR: TRUE dominates, then UNKNOWN."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def sql_not(a: bool | None) -> bool | None:
    """SQL NOT: UNKNOWN stays UNKNOWN."""
    if a is None:
        return None
    return not a


_COMPARE_OPS = {"=", "<>", "<", "<=", ">", ">="}


def sql_compare(op: str, left: Any, right: Any) -> bool | None:
    """SQL comparison with NULL propagation.

    Any comparison involving NULL yields UNKNOWN (``None``).
    """
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown comparison operator {op!r}")


def negate_comparison(op: str) -> str:
    """The comparison operator equivalent to NOT(op) under two-valued logic.

    Note: under 3VL, NOT(a < b) is not (a >= b) when NULLs are involved —
    both are UNKNOWN then, so the flipped operator is still exactly
    equivalent.
    """
    return {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}[op]


def flip_comparison(op: str) -> str:
    """The operator obtained by swapping comparison operands."""
    return {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def sql_add(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if isinstance(right, Interval):
        return right.add_to(left)
    if isinstance(left, Interval):
        return left.add_to(right)
    return left + right


def sql_sub(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if isinstance(right, Interval):
        return (-right).add_to(left)
    return left - right


def sql_mul(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    return left * right


def sql_div(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if right == 0:
        raise ZeroDivisionError("division by zero")
    if isinstance(left, int) and isinstance(right, int) and left % right == 0:
        return left // right
    return left / right


ARITHMETIC_FUNCTIONS = {
    "+": sql_add,
    "-": sql_sub,
    "*": sql_mul,
    "/": sql_div,
}
