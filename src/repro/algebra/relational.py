"""Logical relational operators.

All operators are *bag-oriented* (paper Section 1.3): union is UNION ALL and
duplicates are removed only by explicit GroupBy.  The operator set is the
paper's:

* standard operators — :class:`Get`, :class:`Select`, :class:`Project`,
  :class:`Join` (inner/cross/left-outer/semi/anti), :class:`GroupBy` (vector
  aggregate ``G_{A,F}``), :class:`ScalarGroupBy` (``G¹_F``),
  :class:`UnionAll`, :class:`Difference`, :class:`ConstantScan`,
  :class:`Sort`, :class:`Top`;
* the paper's higher-order constructs — :class:`Apply` (``R A⊗ E``,
  parameterized per-row execution), :class:`SegmentApply` (``R SA_A E``,
  table-valued parameter) with its :class:`SegmentRef` leaf;
* :class:`LocalGroupBy` (Section 3.3) and :class:`Max1row` (Section 2.4).

Operators are immutable; rewrites build new trees.  Each node knows its
ordered ``output_columns()`` and can report ``outer_references()`` — free
columns resolved from outside the subtree, i.e. correlation parameters.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, Mapping, Sequence

from .aggregates import AggregateFunction
from .columns import Column, ColumnSet
from .scalar import (AggregateCall, ColumnRef, Literal, ScalarExpr,
                     conjunction)


class JoinKind(enum.Enum):
    INNER = "inner"
    LEFT_OUTER = "left outer"
    LEFT_SEMI = "left semi"
    LEFT_ANTI = "left anti"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def preserves_left(self) -> bool:
        """Whether every left row appears at least once in the output."""
        return self in (JoinKind.LEFT_OUTER, JoinKind.LEFT_SEMI,
                        JoinKind.LEFT_ANTI)

    @property
    def left_only_output(self) -> bool:
        """Whether the output schema is the left schema only."""
        return self in (JoinKind.LEFT_SEMI, JoinKind.LEFT_ANTI)


class RelationalOp:
    """Base class for logical relational operators."""

    __slots__ = ("_outer_refs_cache",)

    def __init__(self) -> None:
        self._outer_refs_cache: ColumnSet | None = None

    # -- structure ----------------------------------------------------------

    @property
    def children(self) -> tuple["RelationalOp", ...]:
        return ()

    def with_children(self, children: Sequence["RelationalOp"]) -> "RelationalOp":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def local_expressions(self) -> tuple[ScalarExpr, ...]:
        """Scalar expressions attached directly to this operator."""
        return ()

    def map_expressions(self, fn: Callable[[ScalarExpr], ScalarExpr]) -> "RelationalOp":
        """Rebuild this node with ``fn`` applied to each local expression."""
        return self

    def local_column_slots(self) -> tuple[Column, ...]:
        """Columns referenced (not produced) through non-expression slots,
        e.g. GroupBy grouping columns or Sort keys that are bare columns."""
        return ()

    # -- schema ---------------------------------------------------------------

    def output_columns(self) -> list[Column]:
        raise NotImplementedError

    def produced_columns(self) -> list[Column]:
        """Columns introduced by this very node (not inherited)."""
        return []

    # -- correlation analysis ---------------------------------------------------

    def outer_references(self) -> ColumnSet:
        """Free columns of the subtree: referenced but not produced within."""
        if self._outer_refs_cache is None:
            refs = ColumnSet()
            for expr in self.local_expressions():
                refs = refs.union(expr.free_columns())
            refs = refs.union(self.local_column_slots())
            for child in self.children:
                refs = refs.union(child.outer_references())
            available = ColumnSet()
            for child in self.children:
                available = available.union(child.output_columns())
            self._outer_refs_cache = refs.difference(available)
        return self._outer_refs_cache

    def is_correlated_with(self, columns: Iterable[Column]) -> bool:
        return not self.outer_references().isdisjoint(ColumnSet(columns))

    def contains_subquery(self) -> bool:
        """Whether any scalar expression still holds a relational child."""
        if any(e.contains_subquery() for e in self.local_expressions()):
            return True
        return any(c.contains_subquery() for c in self.children)

    # -- display ---------------------------------------------------------------

    def label(self) -> str:
        """One-line description used by the plan printer."""
        return type(self).__name__

    def __repr__(self) -> str:
        from .printer import explain  # local import to avoid a cycle
        return explain(self)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------

class Get(RelationalOp):
    """Scan of a stored table.

    Every ``Get`` owns *fresh* columns; two scans of the same table have
    disjoint column identities (self-join safety).  ``key_columns`` carries
    the declared keys so property derivation and Max1row elision can reason
    about uniqueness without consulting the catalog.
    """

    __slots__ = ("table_name", "columns", "key_columns", "table")

    def __init__(self, table_name: str, columns: Sequence[Column],
                 key_columns: Sequence[Sequence[Column]] = (),
                 table: Any = None) -> None:
        super().__init__()
        self.table_name = table_name
        self.columns = list(columns)
        self.key_columns = [tuple(k) for k in key_columns]
        self.table = table

    def output_columns(self) -> list[Column]:
        return list(self.columns)

    def produced_columns(self) -> list[Column]:
        return list(self.columns)

    def label(self) -> str:
        return f"Get({self.table_name})"


class ConstantScan(RelationalOp):
    """A constant relation: explicit rows over explicit columns.

    ``ConstantScan([], [()])`` is the single-row, zero-column table used to
    evaluate uncorrelated scalar expressions.
    """

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[Column],
                 rows: Sequence[tuple] = ((),)) -> None:
        super().__init__()
        self.columns = list(columns)
        self.rows = [tuple(r) for r in rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError("constant row width mismatch")

    def output_columns(self) -> list[Column]:
        return list(self.columns)

    def produced_columns(self) -> list[Column]:
        return list(self.columns)

    def label(self) -> str:
        try:
            digest = hash(tuple(self.rows))
        except TypeError:  # pragma: no cover - unhashable constants
            digest = id(self)
        return f"ConstantScan({len(self.rows)} rows, #{digest & 0xffffff:x})"


class SegmentRef(RelationalOp):
    """The table-valued parameter inside a :class:`SegmentApply` inner tree.

    Its columns mirror (as fresh identities) the output of the SegmentApply's
    relational input; the enclosing SegmentApply records the correspondence.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: Sequence[Column]) -> None:
        super().__init__()
        self.columns = list(columns)

    def output_columns(self) -> list[Column]:
        return list(self.columns)

    def produced_columns(self) -> list[Column]:
        return list(self.columns)

    def label(self) -> str:
        return "SegmentRef(S)"


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------

class Select(RelationalOp):
    """Relational selection (filter).  Keeps rows whose predicate is TRUE."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: RelationalOp, predicate: ScalarExpr) -> None:
        super().__init__()
        self.child = child
        self.predicate = predicate

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[RelationalOp]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def local_expressions(self) -> tuple[ScalarExpr, ...]:
        return (self.predicate,)

    def map_expressions(self, fn: Callable[[ScalarExpr], ScalarExpr]) -> "Select":
        return Select(self.child, fn(self.predicate))

    def output_columns(self) -> list[Column]:
        return self.child.output_columns()

    def label(self) -> str:
        return f"Select({self.predicate.sql()})"


class Project(RelationalOp):
    """Projection with computed columns.

    ``items`` is an ordered list of ``(output_column, expression)``.  A
    pass-through item uses the child's own column object as output with a
    reference to itself as expression, preserving column identity across the
    projection.
    """

    __slots__ = ("child", "items")

    def __init__(self, child: RelationalOp,
                 items: Sequence[tuple[Column, ScalarExpr]]) -> None:
        super().__init__()
        self.child = child
        self.items = [(c, e) for c, e in items]

    @classmethod
    def passthrough(cls, child: RelationalOp,
                    columns: Sequence[Column]) -> "Project":
        return cls(child, [(c, ColumnRef(c)) for c in columns])

    @classmethod
    def extend(cls, child: RelationalOp,
               computed: Sequence[tuple[Column, ScalarExpr]]) -> "Project":
        """Child columns plus additional computed ones."""
        items = [(c, ColumnRef(c)) for c in child.output_columns()]
        items.extend(computed)
        return cls(child, items)

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[RelationalOp]) -> "Project":
        (child,) = children
        return Project(child, self.items)

    def local_expressions(self) -> tuple[ScalarExpr, ...]:
        return tuple(e for _, e in self.items)

    def map_expressions(self, fn: Callable[[ScalarExpr], ScalarExpr]) -> "Project":
        return Project(self.child, [(c, fn(e)) for c, e in self.items])

    def output_columns(self) -> list[Column]:
        return [c for c, _ in self.items]

    def produced_columns(self) -> list[Column]:
        return [c for c, e in self.items
                if not (isinstance(e, ColumnRef) and e.column == c)]

    def is_pure_passthrough(self) -> bool:
        return all(isinstance(e, ColumnRef) and e.column == c
                   for c, e in self.items)

    def label(self) -> str:
        parts = []
        for c, e in self.items:
            if isinstance(e, ColumnRef) and e.column == c:
                parts.append(repr(c))
            else:
                parts.append(f"{c!r}:={e.sql()}")
        return f"Project({', '.join(parts)})"


class _GroupByBase(RelationalOp):
    """Shared structure of GroupBy / ScalarGroupBy / LocalGroupBy."""

    __slots__ = ("child", "group_columns", "aggregates")

    def __init__(self, child: RelationalOp,
                 group_columns: Sequence[Column],
                 aggregates: Sequence[tuple[Column, AggregateCall]]) -> None:
        super().__init__()
        self.child = child
        self.group_columns = list(group_columns)
        self.aggregates = [(c, a) for c, a in aggregates]

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return (self.child,)

    def local_expressions(self) -> tuple[ScalarExpr, ...]:
        return tuple(a for _, a in self.aggregates)

    def local_column_slots(self) -> tuple[Column, ...]:
        return tuple(self.group_columns)

    def output_columns(self) -> list[Column]:
        return list(self.group_columns) + [c for c, _ in self.aggregates]

    def produced_columns(self) -> list[Column]:
        return [c for c, _ in self.aggregates]

    def _agg_label(self) -> str:
        parts = [f"{c!r}:={a.sql()}" for c, a in self.aggregates]
        return ", ".join(parts)


class GroupBy(_GroupByBase):
    """Vector aggregate ``G_{A,F}``: one output row per group; empty input
    yields empty output."""

    __slots__ = ()

    def with_children(self, children: Sequence[RelationalOp]) -> "GroupBy":
        (child,) = children
        return GroupBy(child, self.group_columns, self.aggregates)

    def map_expressions(self, fn: Callable[[ScalarExpr], ScalarExpr]) -> "GroupBy":
        aggs = [(c, _as_aggregate(fn(a))) for c, a in self.aggregates]
        return GroupBy(self.child, self.group_columns, aggs)

    def label(self) -> str:
        groups = ", ".join(repr(c) for c in self.group_columns)
        return f"GroupBy([{groups}], {self._agg_label()})"


class ScalarGroupBy(_GroupByBase):
    """Scalar aggregate ``G¹_F``: always exactly one output row."""

    __slots__ = ()

    def __init__(self, child: RelationalOp,
                 aggregates: Sequence[tuple[Column, AggregateCall]]) -> None:
        super().__init__(child, [], aggregates)

    def with_children(self, children: Sequence[RelationalOp]) -> "ScalarGroupBy":
        (child,) = children
        return ScalarGroupBy(child, self.aggregates)

    def map_expressions(self, fn: Callable[[ScalarExpr], ScalarExpr]) -> "ScalarGroupBy":
        aggs = [(c, _as_aggregate(fn(a))) for c, a in self.aggregates]
        return ScalarGroupBy(self.child, aggs)

    def label(self) -> str:
        return f"ScalarGroupBy({self._agg_label()})"


class LocalGroupBy(_GroupByBase):
    """Partial (local) aggregation — paper Section 3.3.

    Execution is identical to GroupBy; the distinct operator exists because
    *different rewrites are valid for it* (grouping columns may be freely
    extended; it may move below joins on either side).
    """

    __slots__ = ()

    def with_children(self, children: Sequence[RelationalOp]) -> "LocalGroupBy":
        (child,) = children
        return LocalGroupBy(child, self.group_columns, self.aggregates)

    def map_expressions(self, fn: Callable[[ScalarExpr], ScalarExpr]) -> "LocalGroupBy":
        aggs = [(c, _as_aggregate(fn(a))) for c, a in self.aggregates]
        return LocalGroupBy(self.child, self.group_columns, aggs)

    def label(self) -> str:
        groups = ", ".join(repr(c) for c in self.group_columns)
        return f"LocalGroupBy([{groups}], {self._agg_label()})"


def _as_aggregate(expr: ScalarExpr) -> AggregateCall:
    if not isinstance(expr, AggregateCall):
        raise TypeError("aggregate slot must remain an AggregateCall")
    return expr


class Max1row(RelationalOp):
    """Pass rows through; raise a run-time error on a second row.

    Implements SQL scalar-subquery semantics for paper Section 2.4's
    *exception subqueries* (Class 3).
    """

    __slots__ = ("child",)

    def __init__(self, child: RelationalOp) -> None:
        super().__init__()
        self.child = child

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[RelationalOp]) -> "Max1row":
        (child,) = children
        return Max1row(child)

    def output_columns(self) -> list[Column]:
        return self.child.output_columns()

    def label(self) -> str:
        return "Max1row"


class Sort(RelationalOp):
    """Order the input.  ``keys`` are (expression, ascending) pairs; NULLs
    sort first, matching common engine defaults for ascending order."""

    __slots__ = ("child", "keys")

    def __init__(self, child: RelationalOp,
                 keys: Sequence[tuple[ScalarExpr, bool]]) -> None:
        super().__init__()
        self.child = child
        self.keys = [(e, bool(asc)) for e, asc in keys]

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[RelationalOp]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    def local_expressions(self) -> tuple[ScalarExpr, ...]:
        return tuple(e for e, _ in self.keys)

    def map_expressions(self, fn: Callable[[ScalarExpr], ScalarExpr]) -> "Sort":
        return Sort(self.child, [(fn(e), asc) for e, asc in self.keys])

    def output_columns(self) -> list[Column]:
        return self.child.output_columns()

    def label(self) -> str:
        parts = ", ".join(f"{e.sql()} {'asc' if asc else 'desc'}"
                          for e, asc in self.keys)
        return f"Sort({parts})"


class Top(RelationalOp):
    """Limit the input to ``count`` rows, after skipping ``offset``."""

    __slots__ = ("child", "count", "offset")

    def __init__(self, child: RelationalOp, count: int,
                 offset: int = 0) -> None:
        super().__init__()
        if count < 0:
            raise ValueError("LIMIT must be non-negative")
        if offset < 0:
            raise ValueError("OFFSET must be non-negative")
        self.child = child
        self.count = count
        self.offset = offset

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[RelationalOp]) -> "Top":
        (child,) = children
        return Top(child, self.count, self.offset)

    def output_columns(self) -> list[Column]:
        return self.child.output_columns()

    def label(self) -> str:
        suffix = f", offset {self.offset}" if self.offset else ""
        return f"Top({self.count}{suffix})"


# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------

class Join(RelationalOp):
    """Join variants over *uncorrelated* inputs.

    ``predicate`` of ``None`` means TRUE (cross product for INNER).  For
    LEFT_OUTER the right-hand columns become nullable in the output; for
    semi/anti joins the output schema is the left schema.
    """

    __slots__ = ("kind", "left", "right", "predicate")

    def __init__(self, kind: JoinKind, left: RelationalOp, right: RelationalOp,
                 predicate: ScalarExpr | None = None) -> None:
        super().__init__()
        self.kind = kind
        self.left = left
        self.right = right
        self.predicate = predicate

    @classmethod
    def cross(cls, left: RelationalOp, right: RelationalOp) -> "Join":
        return cls(JoinKind.INNER, left, right, None)

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RelationalOp]) -> "Join":
        left, right = children
        return Join(self.kind, left, right, self.predicate)

    def local_expressions(self) -> tuple[ScalarExpr, ...]:
        return () if self.predicate is None else (self.predicate,)

    def map_expressions(self, fn: Callable[[ScalarExpr], ScalarExpr]) -> "Join":
        pred = None if self.predicate is None else fn(self.predicate)
        return Join(self.kind, self.left, self.right, pred)

    def predicate_or_true(self) -> ScalarExpr:
        return self.predicate if self.predicate is not None else Literal(True)

    def output_columns(self) -> list[Column]:
        left_cols = self.left.output_columns()
        if self.kind.left_only_output:
            return left_cols
        right_cols = self.right.output_columns()
        if self.kind is JoinKind.LEFT_OUTER:
            right_cols = [c.with_nullability(True) for c in right_cols]
        return left_cols + right_cols

    def label(self) -> str:
        pred = self.predicate.sql() if self.predicate is not None else "true"
        return f"Join[{self.kind.value}]({pred})"


class Apply(RelationalOp):
    """The paper's ``R A⊗ E`` — parameterized per-row execution.

    For each row ``r`` of ``left``, evaluate ``right`` with ``r``'s columns
    available as parameters, and combine ``{r} ⊗ right(r)`` where ``⊗`` is
    given by ``kind`` (INNER is the primitive cross-product form ``A×``).
    ``predicate`` supports the ``A⊗p`` variants produced midway through
    Apply removal.

    ``guard`` implements the paper's Section 2.4 *conditional scalar
    execution*: when present (LEFT_OUTER only), the right side is executed
    only for rows where the guard is TRUE — other rows are NULL-padded
    without touching the subexpression, so a subquery inside a non-taken
    CASE branch can never raise its run-time error.
    """

    __slots__ = ("kind", "left", "right", "predicate", "guard")

    def __init__(self, kind: JoinKind, left: RelationalOp, right: RelationalOp,
                 predicate: ScalarExpr | None = None,
                 guard: ScalarExpr | None = None) -> None:
        super().__init__()
        if guard is not None and kind is not JoinKind.LEFT_OUTER:
            raise ValueError("guarded Apply requires LEFT_OUTER semantics")
        self.kind = kind
        self.left = left
        self.right = right
        self.predicate = predicate
        self.guard = guard

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RelationalOp]) -> "Apply":
        left, right = children
        return Apply(self.kind, left, right, self.predicate, self.guard)

    def local_expressions(self) -> tuple[ScalarExpr, ...]:
        exprs = []
        if self.predicate is not None:
            exprs.append(self.predicate)
        if self.guard is not None:
            exprs.append(self.guard)
        return tuple(exprs)

    def map_expressions(self, fn: Callable[[ScalarExpr], ScalarExpr]) -> "Apply":
        pred = None if self.predicate is None else fn(self.predicate)
        guard = None if self.guard is None else fn(self.guard)
        return Apply(self.kind, self.left, self.right, pred, guard)

    def correlation_columns(self) -> ColumnSet:
        """The left columns the right side actually parameterizes on."""
        return self.right.outer_references().intersection(
            ColumnSet(self.left.output_columns()))

    def is_correlated(self) -> bool:
        return bool(self.correlation_columns())

    def output_columns(self) -> list[Column]:
        left_cols = self.left.output_columns()
        if self.kind.left_only_output:
            return left_cols
        right_cols = self.right.output_columns()
        if self.kind is JoinKind.LEFT_OUTER:
            right_cols = [c.with_nullability(True) for c in right_cols]
        return left_cols + right_cols

    def label(self) -> str:
        binds = ", ".join(repr(c) for c in sorted(
            self.correlation_columns(), key=lambda c: c.cid))
        pred = f", on {self.predicate.sql()}" if self.predicate is not None else ""
        guard = f", when {self.guard.sql()}" if self.guard is not None else ""
        return f"Apply[{self.kind.value}](bind: {binds}{pred}{guard})"


class SegmentApply(RelationalOp):
    """The paper's ``R SA_A E`` — per-segment execution (Section 3.4).

    ``left`` is segmented on ``segment_columns``; for each segment ``S`` the
    ``right`` tree is evaluated with its :class:`SegmentRef` leaf bound to
    ``S``.  Output rows are the segment-column values prepended to
    ``right``'s output.  ``inner_columns[i]`` is the SegmentRef column that
    mirrors ``left.output_columns()[i]`` (the columns are stored by value so
    the node survives subtree cloning).
    """

    __slots__ = ("left", "right", "segment_columns", "inner_columns")

    def __init__(self, left: RelationalOp, right: RelationalOp,
                 segment_columns: Sequence[Column],
                 inner_columns: Sequence[Column]) -> None:
        super().__init__()
        if len(inner_columns) != len(left.output_columns()):
            raise ValueError("segment reference width must match left input")
        self.left = left
        self.right = right
        self.segment_columns = list(segment_columns)
        self.inner_columns = list(inner_columns)

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RelationalOp]) -> "SegmentApply":
        left, right = children
        return SegmentApply(left, right, self.segment_columns,
                            self.inner_columns)

    def local_column_slots(self) -> tuple[Column, ...]:
        return tuple(self.segment_columns)

    def output_columns(self) -> list[Column]:
        return list(self.segment_columns) + self.right.output_columns()

    def segment_column_for(self, left_column: Column) -> Column:
        """The SegmentRef column mirroring a left output column."""
        for i, col in enumerate(self.left.output_columns()):
            if col == left_column:
                return self.inner_columns[i]
        raise KeyError(f"{left_column!r} is not produced by the left input")

    def label(self) -> str:
        segs = ", ".join(repr(c) for c in self.segment_columns)
        return f"SegmentApply[{segs}]"


class UnionAll(RelationalOp):
    """Bag union of any number of inputs.

    Produces fresh output columns; ``input_maps[i][j]`` is the column of
    input ``i`` feeding output position ``j``.
    """

    __slots__ = ("inputs", "columns", "input_maps")

    def __init__(self, inputs: Sequence[RelationalOp],
                 columns: Sequence[Column],
                 input_maps: Sequence[Sequence[Column]]) -> None:
        super().__init__()
        if len(inputs) < 2:
            raise ValueError("UnionAll requires at least two inputs")
        if len(input_maps) != len(inputs):
            raise ValueError("one input map per input required")
        for imap in input_maps:
            if len(imap) != len(columns):
                raise ValueError("input map width must match output width")
        self.inputs = list(inputs)
        self.columns = list(columns)
        self.input_maps = [list(m) for m in input_maps]

    @classmethod
    def from_inputs(cls, inputs: Sequence[RelationalOp]) -> "UnionAll":
        """Union inputs positionally, deriving fresh output columns."""
        first_cols = inputs[0].output_columns()
        out_cols = []
        for position, col in enumerate(first_cols):
            nullable = any(inp.output_columns()[position].nullable
                           for inp in inputs)
            out_cols.append(Column(col.name, col.dtype, nullable))
        maps = [list(inp.output_columns()) for inp in inputs]
        return cls(inputs, out_cols, maps)

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return tuple(self.inputs)

    def with_children(self, children: Sequence[RelationalOp]) -> "UnionAll":
        return UnionAll(list(children), self.columns, self.input_maps)

    def local_column_slots(self) -> tuple[Column, ...]:
        flat: list[Column] = []
        for imap in self.input_maps:
            flat.extend(imap)
        return tuple(flat)

    def output_columns(self) -> list[Column]:
        return list(self.columns)

    def produced_columns(self) -> list[Column]:
        return list(self.columns)

    def label(self) -> str:
        maps = ";".join(",".join(str(c.cid) for c in imap)
                        for imap in self.input_maps)
        return f"UnionAll({len(self.inputs)} inputs; {maps})"


class Difference(RelationalOp):
    """Bag difference (EXCEPT ALL), positional like :class:`UnionAll`."""

    __slots__ = ("left", "right", "columns", "left_map", "right_map")

    def __init__(self, left: RelationalOp, right: RelationalOp,
                 columns: Sequence[Column],
                 left_map: Sequence[Column],
                 right_map: Sequence[Column]) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.columns = list(columns)
        self.left_map = list(left_map)
        self.right_map = list(right_map)

    @classmethod
    def from_inputs(cls, left: RelationalOp, right: RelationalOp) -> "Difference":
        out_cols = [c.fresh_copy() for c in left.output_columns()]
        return cls(left, right, out_cols,
                   left.output_columns(), right.output_columns())

    @property
    def children(self) -> tuple[RelationalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[RelationalOp]) -> "Difference":
        left, right = children
        return Difference(left, right, self.columns, self.left_map, self.right_map)

    def local_column_slots(self) -> tuple[Column, ...]:
        return tuple(self.left_map) + tuple(self.right_map)

    def output_columns(self) -> list[Column]:
        return list(self.columns)

    def produced_columns(self) -> list[Column]:
        return list(self.columns)

    def label(self) -> str:
        left = ",".join(str(c.cid) for c in self.left_map)
        right = ",".join(str(c.cid) for c in self.right_map)
        return f"Difference({left} | {right})"


# ---------------------------------------------------------------------------
# Tree utilities
# ---------------------------------------------------------------------------

def transform_bottom_up(rel: RelationalOp,
                        fn: Callable[[RelationalOp], RelationalOp]) -> RelationalOp:
    """Rebuild the tree bottom-up, applying ``fn`` at every node."""
    new_children = [transform_bottom_up(c, fn) for c in rel.children]
    if any(n is not o for n, o in zip(new_children, rel.children)):
        rel = rel.with_children(new_children)
    return fn(rel)


def substitute_outer_columns(rel: RelationalOp,
                             mapping: Mapping[int, ScalarExpr]) -> RelationalOp:
    """Substitute *outer* (free) column references throughout a subtree.

    Used when a rewrite renames or replaces correlation parameters.  Columns
    produced inside the subtree are never in ``mapping`` because ids are
    globally unique.
    """
    if not mapping:
        return rel

    def rewrite(node: RelationalOp) -> RelationalOp:
        for col in node.local_column_slots():
            if col.cid in mapping:
                replacement = mapping[col.cid]
                if not isinstance(replacement, ColumnRef):
                    raise ValueError(
                        f"column slot {col!r} cannot take expression "
                        f"{replacement.sql()}")
        slot_map = {cid: e.column for cid, e in mapping.items()
                    if isinstance(e, ColumnRef)}
        node = _remap_column_slots(node, slot_map)
        return node.map_expressions(lambda e: e.substitute_columns(mapping))

    return transform_bottom_up(rel, rewrite)


def _remap_column_slots(node: RelationalOp,
                        mapping: Mapping[int, Column]) -> RelationalOp:
    """Rewrite bare-column slots (group/segment/union maps) of one node."""
    if not mapping:
        return node

    def m(col: Column) -> Column:
        return mapping.get(col.cid, col)

    if isinstance(node, GroupBy):
        return GroupBy(node.child, [m(c) for c in node.group_columns],
                       node.aggregates)
    if isinstance(node, LocalGroupBy):
        return LocalGroupBy(node.child, [m(c) for c in node.group_columns],
                            node.aggregates)
    if isinstance(node, SegmentApply):
        return SegmentApply(node.left, node.right,
                            [m(c) for c in node.segment_columns],
                            [m(c) for c in node.inner_columns])
    if isinstance(node, UnionAll):
        return UnionAll(node.inputs, node.columns,
                        [[m(c) for c in imap] for imap in node.input_maps])
    if isinstance(node, Difference):
        return Difference(node.left, node.right, node.columns,
                          [m(c) for c in node.left_map],
                          [m(c) for c in node.right_map])
    return node


def clone_with_fresh_columns(
        rel: RelationalOp,
        outer_mapping: Mapping[int, Column] | None = None,
) -> tuple[RelationalOp, dict[int, Column]]:
    """Deep-copy a subtree, freshening every column it produces.

    Returns the copy plus the mapping from original column ids to the fresh
    columns, so callers can translate expressions that referenced the
    original subtree.  Outer references are left untouched unless remapped
    via ``outer_mapping`` (both cases keep the copy well-formed).

    This is the "introduce a common subexpression" primitive behind
    identities (5)–(7) and SegmentApply introduction.
    """
    mapping: dict[int, Column] = dict(outer_mapping or {})

    def clone(node: RelationalOp) -> RelationalOp:
        children = [clone(c) for c in node.children]
        for col in node.produced_columns():
            if col.cid not in mapping:
                mapping[col.cid] = col.fresh_copy()

        if isinstance(node, Get):
            new_cols = [mapping[c.cid] for c in node.columns]
            new_keys = [tuple(mapping[c.cid] for c in k)
                        for k in node.key_columns]
            return Get(node.table_name, new_cols, new_keys, node.table)
        if isinstance(node, ConstantScan):
            return ConstantScan([mapping[c.cid] for c in node.columns],
                                node.rows)
        if isinstance(node, SegmentRef):
            return SegmentRef([mapping[c.cid] for c in node.columns])

        rebuilt = node.with_children(children)
        rebuilt = _remap_column_slots(rebuilt, mapping)
        rebuilt = rebuilt.map_expressions(
            lambda e: e.remap_columns(mapping))
        rebuilt = _remap_produced_columns(rebuilt, mapping)
        return rebuilt

    return clone(rel), mapping


def _remap_produced_columns(node: RelationalOp,
                            mapping: Mapping[int, Column]) -> RelationalOp:
    """Rewrite the *output* column slots of one node (for cloning)."""

    def m(col: Column) -> Column:
        return mapping.get(col.cid, col)

    if isinstance(node, Project):
        return Project(node.child, [(m(c), e) for c, e in node.items])
    if isinstance(node, GroupBy):
        return GroupBy(node.child, node.group_columns,
                       [(m(c), a) for c, a in node.aggregates])
    if isinstance(node, ScalarGroupBy):
        return ScalarGroupBy(node.child,
                             [(m(c), a) for c, a in node.aggregates])
    if isinstance(node, LocalGroupBy):
        return LocalGroupBy(node.child, node.group_columns,
                            [(m(c), a) for c, a in node.aggregates])
    if isinstance(node, UnionAll):
        return UnionAll(node.inputs, [m(c) for c in node.columns],
                        node.input_maps)
    if isinstance(node, Difference):
        return Difference(node.left, node.right,
                          [m(c) for c in node.columns],
                          node.left_map, node.right_map)
    return node


def collect_nodes(rel: RelationalOp,
                  predicate: Callable[[RelationalOp], bool] | None = None
                  ) -> list[RelationalOp]:
    """All nodes of the tree (pre-order), optionally filtered.

    Descends into relational subtrees embedded in scalar expressions (the
    pre-normalization subquery form) as well as ordinary children.
    """
    result: list[RelationalOp] = []

    def visit_expr(expr: ScalarExpr) -> None:
        for sub in expr.relational_children:
            visit(sub)
        for child in expr.children:
            visit_expr(child)

    def visit(node: RelationalOp) -> None:
        if predicate is None or predicate(node):
            result.append(node)
        for expr in node.local_expressions():
            visit_expr(expr)
        for child in node.children:
            visit(child)

    visit(rel)
    return result
