"""Concurrent query service: sessions, admission control, wire protocol.

Layers, bottom-up:

* :mod:`~repro.server.sessions` — transactional :class:`Session` handles
  with copy-on-write snapshot isolation (obtained via
  :meth:`repro.Database.session`);
* :mod:`~repro.server.admission` — the bounded worker pool with fair
  per-session scheduling and overload shedding, plus the global
  :class:`ResourcePool` that query governor budgets are leased from;
* :mod:`~repro.server.wire` / :mod:`~repro.server.client` — the
  JSON-lines socket server and its blocking client.
"""

from .admission import AdmissionController, Lease, ResourcePool
from .client import ClientResult, RetryPolicy, ServerClient
from .sessions import Session, SessionStats
from .wire import QueryServer

__all__ = [
    "AdmissionController",
    "ClientResult",
    "Lease",
    "QueryServer",
    "ResourcePool",
    "RetryPolicy",
    "ServerClient",
    "Session",
    "SessionStats",
]
