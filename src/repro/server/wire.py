"""The wire server: a socket front-end speaking JSON lines.

One TCP connection = one :class:`~repro.server.sessions.Session`.  Each
request is a single JSON object on its own line; each response is one
JSON object on its own line, either ``{"ok": true, ...}`` or
``{"ok": false, "error": {"type": ..., "message": ...}}``.  A request
that fails — bad JSON, unknown op, a query error — fails *that request
only*: the connection stays up and the next line is processed normally.

Supported ops: ``query``, ``explain``, ``begin``, ``commit``,
``rollback``, ``insert``, ``create_table``, ``create_index``,
``drop_table``, ``metrics``, ``health``, ``ping``, ``close``.

Shutdown is graceful: :meth:`QueryServer.drain` stops accepting new
connections and rejects new work with a clean ``ServerError`` while
in-flight requests finish; :meth:`QueryServer.stop` drains, waits up to
``drain_timeout`` for in-flight work, then tears the server down.

Queries and inserts are admitted through the
:class:`~repro.server.admission.AdmissionController` (fair scheduling +
shedding) and each query leases its governor budget from the server's
global :class:`~repro.server.admission.ResourcePool`, so total memory and
row consumption stays bounded no matter how many connections are open.

Values that JSON cannot carry natively (dates) are tagged on the wire as
``{"__date__": "YYYY-MM-DD"}`` and reconstructed by the client, so
results round-trip bit-identically.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Optional

from .. import faultinject
from ..algebra.datatypes import DataType
from ..concurrency import TrackedLock
# The tagged-JSON value codec is shared with the durability subsystem
# (WAL records and checkpoints use the same representation); re-exported
# here because it is part of this module's public wire contract.
from ..durability.codec import (decode_row, decode_value,  # noqa: F401
                                encode_row, encode_value)
from ..errors import ProtocolError, ReproError, ServerError
from .admission import (AdmissionController, DEFAULT_MAX_QUEUE_DEPTH,
                        DEFAULT_MAX_WORKERS, ResourcePool)

_DTYPES = {d.value: d for d in DataType}

#: Ops still served while draining: observability and cleanup only.
_DRAIN_ALLOWED_OPS = frozenset(
    {"ping", "health", "metrics", "rollback", "close"})


class _LineReader:
    """Buffered socket line reader that survives ``recv`` timeouts.

    ``readline`` returns ``None`` on a timeout (poll again), ``b""`` at
    EOF, otherwise one line.  A timeout never loses buffered partial
    data — the property a ``makefile``-based reader cannot offer, and
    the one that lets connection loops re-check shutdown flags while a
    client is idle.
    """

    __slots__ = ("_conn", "_buffer", "_eof")

    def __init__(self, conn: socket.socket) -> None:
        self._conn = conn
        self._buffer = bytearray()
        self._eof = False

    def readline(self) -> bytes | None:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline + 1])
                del self._buffer[:newline + 1]
                return line
            if self._eof:
                line = bytes(self._buffer)
                self._buffer.clear()
                return line  # b"" once fully drained
            try:
                chunk = self._conn.recv(65536)
            except socket.timeout:
                return None
            if not chunk:
                self._eof = True
                continue
            self._buffer.extend(chunk)


def error_payload(exc: BaseException) -> dict:
    payload = {"type": type(exc).__name__, "message": str(exc)}
    # ServerOverloaded carries structured back-pressure detail the client
    # can use to decide whether/when to retry.
    for attr in ("reason", "limit", "pending"):
        if hasattr(exc, attr):
            payload[attr] = getattr(exc, attr)
    return payload


class QueryServer:
    """A concurrent query service over one shared database.

    ::

        server = QueryServer(db, max_workers=8)
        server.start()              # background accept loop
        host, port = server.address
        ...
        server.stop()

    Also usable as a context manager (``with QueryServer(db) as server:``).
    """

    def __init__(self, database, host: str = "127.0.0.1", port: int = 0,
                 max_workers: int = DEFAULT_MAX_WORKERS,
                 max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                 pool_memory_rows: Optional[int] = None,
                 pool_row_budget: Optional[int] = None,
                 query_memory_rows: Optional[int] = None,
                 query_row_budget: Optional[int] = None,
                 lease_timeout: float = 5.0,
                 request_timeout: Optional[float] = 30.0,
                 lock_timeout: float = 5.0,
                 drain_timeout: float = 5.0) -> None:
        self.database = database
        self.admission = AdmissionController(max_workers, max_queue_depth)
        self.pool = ResourcePool(pool_memory_rows, pool_row_budget)
        #: Per-query lease request; defaults to an even split of the pool
        #: across the worker count so full concurrency is always grantable.
        self.query_memory_rows = (
            query_memory_rows if query_memory_rows is not None
            else (pool_memory_rows // max_workers if pool_memory_rows
                  else None))
        self.query_row_budget = (
            query_row_budget if query_row_budget is not None
            else (pool_row_budget // max_workers if pool_row_budget
                  else None))
        self.lease_timeout = lease_timeout
        self.request_timeout = request_timeout
        self.lock_timeout = lock_timeout
        self.drain_timeout = drain_timeout
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.address = self._listener.getsockname()
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._active_lock = TrackedLock("wire.active")
        self._active_requests = 0
        self._lock = TrackedLock("wire.conns")

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "QueryServer":
        if self._accept_thread is not None:
            raise ServerError("server already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="wire-accept")
        self._accept_thread.start()
        return self

    def drain(self) -> None:
        """Stop accepting new connections and reject new work.

        In-flight requests run to completion; observability ops
        (``ping``, ``health``, ``metrics``) and connection cleanup
        (``rollback``, ``close``) still work, so clients and load
        balancers can see the drain instead of hitting a dead socket.
        """
        self._draining.set()

    def stop(self, drain_timeout: Optional[float] = None) -> None:
        """Graceful shutdown: drain, wait for in-flight requests up to
        ``drain_timeout`` (the constructor's by default), then tear the
        server down.  Stragglers that outlive the deadline get the same
        clean drain rejection on their next request."""
        if self._stopping.is_set():
            return
        budget = (drain_timeout if drain_timeout is not None
                  else self.drain_timeout)
        deadline = time.monotonic() + budget
        self.drain()
        while time.monotonic() < deadline:
            with self._active_lock:
                if self._active_requests == 0:
                    break
            time.sleep(0.02)
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self._listener.close()
        with self._lock:
            threads = list(self._conn_threads)
        for thread in threads:
            thread.join(timeout=5.0)
        self.admission.shutdown()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- accept / connection loops -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set() and not self._draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us during stop()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True,
                name="wire-conn")
            with self._lock:
                self._conn_threads.append(thread)
                self._conn_threads = [t for t in self._conn_threads
                                      if t.is_alive()]
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        session = self.database.session(lock_timeout=self.lock_timeout)
        conn.settimeout(0.2)
        reader = _LineReader(conn)
        try:
            while not self._stopping.is_set():
                line = reader.readline()
                if line is None:
                    continue  # idle poll: re-check the shutdown flag
                if not line:
                    return
                if not line.strip():
                    continue
                response, keep_open = self._handle_line(session, line)
                conn.sendall(json.dumps(response).encode() + b"\n")
                if not keep_open:
                    return
        except (OSError, ValueError):
            pass  # client went away mid-write; the session cleanup below runs
        finally:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
            session.close()

    def _handle_line(self, session, line: bytes) -> tuple[dict, bool]:
        try:
            faultinject.hit("wire.decode")
            request = json.loads(line)
            if not isinstance(request, dict) or "op" not in request:
                raise ProtocolError(
                    "request must be a JSON object with an 'op' field")
        except ProtocolError as exc:
            return {"ok": False, "error": error_payload(exc)}, True
        except Exception as exc:
            return {"ok": False, "error": error_payload(
                ProtocolError(f"undecodable request: {exc}"))}, True
        if (self._draining.is_set()
                and request["op"] not in _DRAIN_ALLOWED_OPS):
            return {"ok": False, "error": error_payload(ServerError(
                "server is shutting down; request rejected during "
                "drain"))}, True
        with self._active_lock:
            self._active_requests += 1
        try:
            return self._dispatch(session, request), True
        except ReproError as exc:
            return {"ok": False, "error": error_payload(exc)}, True
        except Exception as exc:  # defensive: one bad request, not the server
            return {"ok": False, "error": error_payload(
                ServerError(f"internal error: {exc}"))}, True
        finally:
            with self._active_lock:
                self._active_requests -= 1

    # -- request dispatch ----------------------------------------------------------

    def _dispatch(self, session, request: dict) -> dict:
        op = request["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ProtocolError(f"unknown op {op!r}")
        return handler(session, request)

    def _op_ping(self, session, request: dict) -> dict:
        return {"ok": True, "pong": True}

    def _op_close(self, session, request: dict) -> dict:
        # The connection loop sees closed=True via the session and the
        # client drops the socket after this response.
        return {"ok": True, "closed": True}

    def _op_query(self, session, request: dict) -> dict:
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("query requires a string 'sql' field")
        params = request.get("params")
        if params is not None and isinstance(params, list):
            params = [decode_value(v) for v in params]
        elif params is not None and isinstance(params, dict):
            params = {k: decode_value(v) for k, v in params.items()}
        engine = request.get("engine")
        mode = request.get("mode")

        def run():
            with self.pool.lease(self.query_memory_rows,
                                 self.query_row_budget,
                                 timeout=self.lease_timeout) as lease:
                return session.execute(
                    sql, params, mode=mode, engine=engine,
                    row_budget=lease.row_budget,
                    memory_budget=lease.memory_rows)

        result = self.admission.run(session.session_id, run,
                                    timeout=self.request_timeout)
        return {
            "ok": True,
            "columns": result.names,
            "types": [t.value for t in result.types],
            "rows": [encode_row(row) for row in result.rows],
            "degraded": result.degraded,
            "elapsed_seconds": result.stats.elapsed_seconds,
            # QueryStats.as_dict uses frozen field names; the client
            # rebuilds a QueryStats from this verbatim.
            "stats": result.stats.as_dict(),
        }

    def _op_explain(self, session, request: dict) -> dict:
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("explain requires a string 'sql' field")
        params = request.get("params")
        if isinstance(params, list):
            params = [decode_value(v) for v in params]
        elif isinstance(params, dict):
            params = {k: decode_value(v) for k, v in params.items()}
        rendered = session.explain(
            sql, mode=request.get("mode"),
            analyze=bool(request.get("analyze", False)),
            costs=bool(request.get("costs", False)),
            format=request.get("format", "text"),
            engine=request.get("engine"), params=params)
        return {"ok": True, "plan": rendered}

    def _op_insert(self, session, request: dict) -> dict:
        table = request.get("table")
        rows = request.get("rows")
        if not isinstance(table, str) or not isinstance(rows, list):
            raise ProtocolError(
                "insert requires a string 'table' and a list 'rows'")
        decoded = [
            {k: decode_value(v) for k, v in row.items()}
            if isinstance(row, dict) else decode_row(row)
            for row in rows]
        count = self.admission.run(
            session.session_id, lambda: session.insert(table, decoded),
            timeout=self.request_timeout)
        return {"ok": True, "inserted": count}

    def _op_begin(self, session, request: dict) -> dict:
        session.begin()
        return {"ok": True}

    def _op_commit(self, session, request: dict) -> dict:
        session.commit()
        return {"ok": True}

    def _op_rollback(self, session, request: dict) -> dict:
        session.rollback()
        return {"ok": True}

    def _op_create_table(self, session, request: dict) -> dict:
        name = request.get("name")
        columns = request.get("columns")
        if not isinstance(name, str) or not isinstance(columns, list):
            raise ProtocolError(
                "create_table requires a string 'name' and a list "
                "'columns' of [name, type] or [name, type, nullable]")
        specs = []
        for spec in columns:
            if (not isinstance(spec, list) or len(spec) not in (2, 3)
                    or spec[1] not in _DTYPES):
                raise ProtocolError(f"bad column spec {spec!r}")
            specs.append((spec[0], _DTYPES[spec[1]], *spec[2:]))
        session.create_table(name, specs,
                             primary_key=request.get("primary_key", ()),
                             unique_keys=request.get("unique_keys", ()))
        return {"ok": True}

    def _op_create_index(self, session, request: dict) -> dict:
        for field in ("name", "table", "columns"):
            if field not in request:
                raise ProtocolError(f"create_index requires {field!r}")
        session.create_index(request["name"], request["table"],
                             request["columns"],
                             kind=request.get("kind", "hash"))
        return {"ok": True}

    def _op_drop_table(self, session, request: dict) -> dict:
        name = request.get("name")
        if not isinstance(name, str):
            raise ProtocolError("drop_table requires a string 'name'")
        session.drop_table(name)
        return {"ok": True}

    def _op_metrics(self, session, request: dict) -> dict:
        return {"ok": True, "metrics": self.metrics()}

    def _op_health(self, session, request: dict) -> dict:
        return {"ok": True, "health": self.health()}

    # -- observability -------------------------------------------------------------

    def health(self) -> dict:
        """Liveness/readiness probe: serving state, load, and (on a
        durable database) WAL size, last checkpoint and the recovery
        report.  ``ready`` flips to False the moment a drain starts."""
        stopping = self._stopping.is_set()
        draining = self._draining.is_set()
        with self._active_lock:
            active = self._active_requests
        durability = self.database.durability_status()
        return {
            "status": ("stopping" if stopping
                       else "draining" if draining else "ok"),
            "live": not stopping,
            "ready": not (stopping or draining),
            "active_requests": active,
            "admission_queue_depth": self.admission.metrics()[
                "queue_depth"],
            "open_sessions": self.database.open_session_count,
            "plan_cache_hit_rate": self.database.plan_cache.stats.hit_rate,
            "durability": (durability if durability is not None
                           else {"enabled": False}),
        }

    def metrics(self) -> dict:
        """One flat snapshot of server health for dashboards and tests."""
        admission = self.admission.metrics()
        cache = self.database.plan_cache.stats
        return {
            "admission": admission,
            "shed": admission["shed"],
            "open_sessions": self.database.open_session_count,
            "plan_cache": cache.as_dict(),
            "plan_cache_hit_rate": cache.hit_rate,
            "resource_pool": self.pool.available(),
            "data_version": self.database.storage.data_version,
            "feedback": self.database.feedback.as_dict(),
        }
