"""Sessions: transactional query contexts with snapshot isolation.

A :class:`Session` is one caller's handle onto a shared
:class:`~repro.database.Database`.  Any number of sessions may run
concurrently; each individual session is meant to be driven by one thread
at a time (the wire server gives every connection its own session).

Isolation model — copy-on-write snapshot isolation:

* **Readers pin, writers install.**  ``begin()`` pins an immutable
  snapshot of every table's current version
  (:meth:`~repro.storage.table.Storage.snapshot`).  Every read inside the
  transaction resolves tables from that snapshot, layered under the
  transaction's own staged writes (read-your-own-writes), so a reader is
  never affected by concurrent commits.
* **Single writer per table.**  The first write to a table acquires that
  table's writer lock and keeps it until commit/rollback.  Acquisition
  checks first-committer-wins: if the table's installed version changed
  after this transaction's snapshot was pinned, the write raises
  :class:`~repro.errors.TransactionConflict` instead of silently basing
  itself on stale data.  A lock that cannot be acquired before the
  session's ``lock_timeout`` also raises ``TransactionConflict`` (a
  conservative deadlock verdict — the server never hangs on a lock
  cycle).
* **Atomic commit.**  ``commit()`` installs every staged table version in
  one critical section (:meth:`~repro.storage.table.Storage.install_many`)
  and bumps the storage ``data_version`` once, so concurrent snapshots
  see all of a transaction or none of it.

Outside an explicit transaction the session autocommits: each statement
pins a fresh snapshot (statement-level read consistency) and each
``insert`` is an atomic copy-on-write install.  DDL is always autocommit
and is rejected inside an explicit transaction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..concurrency import TrackedLock
from ..errors import (SessionClosed, TransactionConflict, TransactionError)
from ..governor import OptimizerBudget, ResourceGovernor
from ..storage.table import Storage, StorageSnapshot, StoredTable

_session_ids = itertools.count(1)


@dataclass
class SessionStats:
    """Aggregated per-session execution statistics.

    ``QueryResult.stats`` stays per-query; this is the session's running
    total, updated by the session itself (one driving thread per session,
    so plain increments are safe).
    """

    queries: int = 0
    rows_returned: int = 0
    degraded_queries: int = 0
    rows_inserted: int = 0
    commits: int = 0
    rollbacks: int = 0
    conflicts: int = 0
    elapsed_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {"queries": self.queries,
                "rows_returned": self.rows_returned,
                "degraded_queries": self.degraded_queries,
                "rows_inserted": self.rows_inserted,
                "commits": self.commits, "rollbacks": self.rollbacks,
                "conflicts": self.conflicts,
                "elapsed_seconds": self.elapsed_seconds}


class _TransactionView:
    """Read view: the transaction's staged versions over its snapshot."""

    __slots__ = ("_snapshot", "_pending")

    def __init__(self, snapshot: StorageSnapshot,
                 pending: dict[str, StoredTable]) -> None:
        self._snapshot = snapshot
        self._pending = pending

    def get(self, name: str) -> StoredTable:
        table = self._pending.get(name.lower())
        if table is not None:
            return table
        return self._snapshot.get(name)


class _Transaction:
    """One open transaction: pinned snapshot, staged writes, held locks."""

    def __init__(self, storage: Storage, lock_timeout: float) -> None:
        self.storage = storage
        self.snapshot = storage.snapshot()
        self.lock_timeout = lock_timeout
        self.pending: dict[str, StoredTable] = {}
        #: Logical row deltas per table (the coerced stored tuples) —
        #: what commit hands to the write-ahead log on a durable
        #: database.
        self.changes: dict[str, list[tuple]] = {}
        self.locks: dict[str, TrackedLock] = {}
        #: Set when a statement failed half-applied; the transaction can
        #: then only be rolled back (statement-level undo would require
        #: rebuilding indexes, and an honest abort is cheaper and safer).
        self.failed = False

    def view(self) -> _TransactionView:
        return _TransactionView(self.snapshot, self.pending)

    def _writable(self, name: str) -> StoredTable:
        key = name.lower()
        table = self.pending.get(key)
        if table is not None:
            return table
        lock = self.storage.writer_lock(name)
        if not lock.acquire(timeout=self.lock_timeout):
            raise TransactionConflict(
                f"could not acquire the writer lock on table {name!r} "
                f"within {self.lock_timeout:.3f}s")
        try:
            pinned = self.snapshot.get_or_none(name)
            current = self.storage.get(name)
            if pinned is not None and current is not pinned:
                raise TransactionConflict(
                    f"table {name!r} was modified by a concurrent commit "
                    f"after this transaction's snapshot was pinned")
        except BaseException:
            lock.release()
            raise
        self.locks[key] = lock
        # A table created after our snapshot has no pinned version; its
        # whole existence postdates us, so the current version is the
        # only possible base and there is no lost update to protect.
        table = (pinned if pinned is not None else current).clone()
        self.pending[key] = table
        return table

    def stage_insert(self, name: str,
                     rows: Iterable[Sequence[Any] | Mapping[str, Any]]
                     ) -> int:
        table = self._writable(name)
        try:
            inserted = table.insert_rows(rows)
        except BaseException:
            self.failed = True
            raise
        self.changes.setdefault(name.lower(), []).extend(inserted)
        return len(inserted)

    def commit(self) -> None:
        try:
            if self.pending:
                self.storage.install_many(self.pending,
                                          changes=self.changes)
        finally:
            self._release()

    def rollback(self) -> None:
        self._release()

    def _release(self) -> None:
        for lock in self.locks.values():
            lock.release()
        self.locks.clear()
        self.pending.clear()
        self.changes.clear()


class Session:
    """One caller's transactional handle on a shared database.

    Obtained from :meth:`repro.Database.session`.  Usable as a context
    manager: a clean exit commits any open transaction, an exception
    rolls it back, and the session is closed either way.
    """

    def __init__(self, database, lock_timeout: float = 5.0,
                 default_mode=None, default_engine: str | None = None
                 ) -> None:
        self._db = database
        self.session_id = f"session-{next(_session_ids)}"
        self.lock_timeout = lock_timeout
        self.default_mode = (default_mode if default_mode is not None
                             else database._resolve_mode("full"))
        self.default_engine = (default_engine if default_engine is not None
                               else database.default_engine)
        self.stats = SessionStats()
        self._txn: _Transaction | None = None
        self._closed = False
        database._register_session(self.session_id)

    # -- transaction control -----------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def begin(self) -> "Session":
        """Start a transaction, pinning the read snapshot now."""
        self._check_open()
        if self._txn is not None:
            raise TransactionError(
                "a transaction is already open on this session")
        self._txn = _Transaction(self._db.storage, self.lock_timeout)
        return self

    def commit(self) -> None:
        """Install every staged write atomically and end the transaction."""
        self._check_open()
        txn = self._require_txn()
        if txn.failed:
            txn.rollback()
            self._txn = None
            self.stats.rollbacks += 1
            raise TransactionError(
                "transaction aborted by a failed statement; "
                "its writes were rolled back")
        try:
            txn.commit()
        finally:
            self._txn = None
        self.stats.commits += 1
        self._db._maybe_checkpoint()

    def rollback(self) -> None:
        """Discard staged writes and end the transaction (no-op when no
        transaction is open, so cleanup paths can call it freely)."""
        self._check_open()
        if self._txn is None:
            return
        self._txn.rollback()
        self._txn = None
        self.stats.rollbacks += 1

    # -- statements ----------------------------------------------------------------

    def execute(self, sql: str, params=None, mode=None,
                engine: str | None = None, *,
                timeout: float | None = None,
                row_budget: int | None = None,
                memory_budget: int | None = None,
                optimizer_budget: OptimizerBudget | None = None,
                governor: ResourceGovernor | None = None,
                use_matviews: bool | None = None):
        """Execute ``sql`` against this session's current read view.

        Inside a transaction the view is the pinned snapshot plus the
        transaction's own staged writes; outside, a fresh snapshot is
        pinned per statement (statement-level read consistency).

        While a transaction holds staged writes, materialized-view
        rewriting is disabled for its statements regardless of
        ``use_matviews``: view backings are only maintained at commit,
        so a rewritten plan could not see the transaction's own
        uncommitted rows (read-your-own-writes).
        """
        self._check_open()
        from ..sql import split_matview_ddl  # deferred: avoid cycle
        if split_matview_ddl(sql) is not None:
            self._no_ddl_in_txn()
        if self._txn is not None:
            snapshot = self._txn.view()
            if self._txn.pending:
                use_matviews = False
        else:
            snapshot = self._db.storage.snapshot()
        result = self._db.execute(
            sql, mode if mode is not None else self.default_mode, params,
            engine=engine if engine is not None else self.default_engine,
            timeout=timeout, row_budget=row_budget,
            memory_budget=memory_budget,
            optimizer_budget=optimizer_budget, governor=governor,
            snapshot=snapshot, use_matviews=use_matviews)
        self.stats.queries += 1
        self.stats.rows_returned += len(result.rows)
        self.stats.elapsed_seconds += result.stats.elapsed_seconds
        if result.degraded:
            self.stats.degraded_queries += 1
        return result

    def insert(self, table_name: str,
               rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Insert rows: staged when a transaction is open (visible only
        to this session until commit), an atomic autocommit otherwise."""
        self._check_open()
        if self._db.catalog.has_matview(table_name):
            from ..errors import CatalogError  # deferred: avoid cycle
            raise CatalogError(
                f"cannot insert into materialized view {table_name!r}; "
                "its contents are maintained automatically")
        if self._txn is not None:
            try:
                count = self._txn.stage_insert(table_name, rows)
            except TransactionConflict:
                self.stats.conflicts += 1
                raise
        else:
            count = self._db.insert(table_name, rows)
        self.stats.rows_inserted += count
        return count

    def explain(self, sql: str, mode=None, *deprecated, options=None,
                analyze: bool = False, costs: bool = False,
                format: str = "text", engine: str | None = None,
                params=None) -> "str | dict":
        """Explain through the unified API (see :meth:`Database.explain`).

        Defaults the mode and engine to the session's; a positional
        ``costs`` flag (pre-1.4 signature) still works but warns.
        """
        self._check_open()
        from ..database import _explain_options  # deferred: avoid cycle
        resolved = _explain_options(deprecated, options, analyze, costs,
                                    format)
        return self._db.explain(
            sql, mode if mode is not None else self.default_mode,
            options=resolved,
            engine=engine if engine is not None else self.default_engine,
            params=params)

    # -- DDL (always autocommit) ---------------------------------------------------

    def create_table(self, name: str, columns, primary_key=(),
                     unique_keys=()):
        self._no_ddl_in_txn()
        return self._db.create_table(name, columns, primary_key,
                                     unique_keys)

    def create_index(self, index_name: str, table_name: str,
                     column_names, kind: str = "hash"):
        self._no_ddl_in_txn()
        return self._db.create_index(index_name, table_name, column_names,
                                     kind)

    def create_view(self, name: str, sql: str) -> None:
        self._no_ddl_in_txn()
        self._db.create_view(name, sql)

    def drop_table(self, name: str) -> None:
        self._no_ddl_in_txn()
        self._db.drop_table(name)

    def _no_ddl_in_txn(self) -> None:
        self._check_open()
        if self._txn is not None:
            raise TransactionError(
                "DDL autocommits and is not allowed inside an explicit "
                "transaction; commit or rollback first")

    # -- lifecycle -----------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Roll back any open transaction and release the session."""
        if self._closed:
            return
        if self._txn is not None:
            self._txn.rollback()
            self._txn = None
            self.stats.rollbacks += 1
        self._closed = True
        self._db._deregister_session(self.session_id)

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosed(
                f"session {self.session_id} is closed")

    def _require_txn(self) -> _Transaction:
        if self._txn is None:
            raise TransactionError("no transaction is open")
        return self._txn

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if self._txn is not None:
                if exc_type is None and not self._txn.failed:
                    self.commit()
                else:
                    self.rollback()
        finally:
            self.close()

    def __repr__(self) -> str:
        state = ("closed" if self._closed
                 else "in-transaction" if self._txn is not None
                 else "idle")
        return f"Session({self.session_id}, {state})"
