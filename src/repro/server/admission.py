"""Admission control: bounded workers, fair queues, overload shedding.

The server never lets load turn into deadlock or unbounded queueing.
Three mechanisms compose:

* :class:`AdmissionController` — a fixed worker pool draining per-session
  FIFO queues in round-robin order, so one chatty session cannot starve
  the others.  When the total queued work reaches ``max_queue_depth`` a
  new submission is *shed* — it raises
  :class:`~repro.errors.ServerOverloaded` immediately instead of waiting,
  which is deliberate back-pressure the client can retry against.
* :class:`ResourcePool` — a global budget of buffered rows (memory proxy)
  and in-flight examined rows from which each admitted query leases its
  per-query governor budget; the lease returns to the pool when the query
  finishes.  A lease that cannot be granted before its timeout sheds too.
* :class:`_Job` — a tiny future: the submitting thread blocks on
  ``result()`` while a worker runs the callable; a worker that dies takes
  down exactly one job (the exception is delivered to that caller), never
  the pool.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Optional

from .. import faultinject
from ..concurrency import TrackedCondition
from ..errors import ServerError, ServerOverloaded

DEFAULT_MAX_WORKERS = 4
DEFAULT_MAX_QUEUE_DEPTH = 32


class Lease:
    """One query's slice of the global resource pool (context manager)."""

    __slots__ = ("memory_rows", "row_budget", "_pool", "_released")

    def __init__(self, pool: "ResourcePool", memory_rows: Optional[int],
                 row_budget: Optional[int]) -> None:
        self._pool = pool
        self.memory_rows = memory_rows
        self.row_budget = row_budget
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._pool._release(self)

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ResourcePool:
    """A global memory/row budget shared by every in-flight query.

    ``memory_rows`` bounds the rows all running queries may buffer
    simultaneously; ``row_budget`` bounds the rows they may examine.
    Either may be ``None`` (unmetered).  Queries lease a slice and return
    it on completion; an exhausted pool makes :meth:`lease` wait up to
    ``timeout`` and then shed with :class:`ServerOverloaded`.
    """

    def __init__(self, memory_rows: Optional[int] = None,
                 row_budget: Optional[int] = None) -> None:
        for name, value in (("memory_rows", memory_rows),
                            ("row_budget", row_budget)):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be at least 1")
        self.memory_rows = memory_rows
        self.row_budget = row_budget
        self._memory_available = memory_rows
        self._rows_available = row_budget
        self._cv = TrackedCondition("server.pool")

    def available(self) -> dict:
        with self._cv:
            return {"memory_rows": self._memory_available,
                    "row_budget": self._rows_available}

    def lease(self, memory_rows: Optional[int] = None,
              row_budget: Optional[int] = None,
              timeout: Optional[float] = None) -> Lease:
        """Draw a per-query budget from the pool (shed on timeout).

        Requests against an unmetered dimension pass through unchanged;
        requests above the pool's total are clamped to it (the pool can
        never grant more than it owns).
        """
        want_memory = self._clamp(memory_rows, self.memory_rows)
        want_rows = self._clamp(row_budget, self.row_budget)
        need_memory = want_memory if self.memory_rows is not None else None
        need_rows = want_rows if self.row_budget is not None else None
        if need_memory is None and need_rows is None:
            return Lease(self, want_memory, want_rows)
        with self._cv:
            granted = self._cv.wait_for(
                lambda: self._grantable(need_memory, need_rows),
                timeout=timeout)
            if not granted:
                raise ServerOverloaded(
                    "resource pool exhausted",
                    self.memory_rows if need_memory is not None
                    else self.row_budget,
                    self._memory_available if need_memory is not None
                    else self._rows_available)
            if need_memory is not None:
                self._memory_available -= need_memory
            if need_rows is not None:
                self._rows_available -= need_rows
        return Lease(self, want_memory, want_rows)

    @staticmethod
    def _clamp(request: Optional[int], total: Optional[int]
               ) -> Optional[int]:
        if request is None:
            return None
        if total is None:
            return request
        return min(request, total)

    def _grantable(self, need_memory: Optional[int],
                   need_rows: Optional[int]) -> bool:
        if need_memory is not None and self._memory_available < need_memory:
            return False
        if need_rows is not None and self._rows_available < need_rows:
            return False
        return True

    def _release(self, lease: Lease) -> None:
        with self._cv:
            if self.memory_rows is not None and lease.memory_rows:
                self._memory_available += lease.memory_rows
            if self.row_budget is not None and lease.row_budget:
                self._rows_available += lease.row_budget
            self._cv.notify_all()


class _Job:
    """A submitted unit of work: run by a worker, awaited by the caller."""

    __slots__ = ("fn", "session_id", "_done", "_result", "_exc")

    def __init__(self, session_id: str, fn: Callable[[], Any]) -> None:
        self.session_id = session_id
        self.fn = fn
        self._done = threading.Event()
        self._result: Any = None
        self._exc: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self._result = self.fn()
        except BaseException as exc:  # delivered to the waiting caller
            self._exc = exc
        finally:
            self._done.set()

    def fail(self, exc: BaseException) -> None:
        self._exc = exc
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout):
            raise ServerError(
                f"timed out waiting for a queued request after {timeout}s")
        if self._exc is not None:
            raise self._exc
        return self._result


class AdmissionController:
    """Bounded worker pool with fair per-session queues and shedding."""

    def __init__(self, max_workers: int = DEFAULT_MAX_WORKERS,
                 max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        self.max_workers = max_workers
        self.max_queue_depth = max_queue_depth
        self._cv = TrackedCondition("admission.queue")
        self._queues: dict[str, deque[_Job]] = {}
        self._rotation: deque[str] = deque()
        self._closed = False
        self._active = 0
        self._shed = 0
        self._completed = 0
        self._failed = 0
        self._workers = [
            threading.Thread(target=self._work, daemon=True,
                             name=f"admission-worker-{i}")
            for i in range(max_workers)]
        for worker in self._workers:
            worker.start()

    # -- submission ----------------------------------------------------------------

    def submit(self, session_id: str, fn: Callable[[], Any]) -> _Job:
        """Queue ``fn`` under ``session_id``; shed if the queue is full."""
        faultinject.hit("admission.enqueue")
        with self._cv:
            if self._closed:
                raise ServerError("admission controller is shut down")
            depth = sum(len(q) for q in self._queues.values())
            if depth >= self.max_queue_depth:
                self._shed += 1
                raise ServerOverloaded("request queue full",
                                       self.max_queue_depth, depth)
            job = _Job(session_id, fn)
            queue = self._queues.get(session_id)
            if queue is None:
                queue = self._queues[session_id] = deque()
                self._rotation.append(session_id)
            elif session_id not in self._rotation:
                self._rotation.append(session_id)
            queue.append(job)
            self._cv.notify()
        return job

    def run(self, session_id: str, fn: Callable[[], Any],
            timeout: Optional[float] = None) -> Any:
        """Submit and wait — the blocking convenience wrapper."""
        return self.submit(session_id, fn).result(timeout)

    # -- workers -------------------------------------------------------------------

    def _next_job(self) -> Optional[_Job]:
        """Round-robin across sessions: one job from the next session
        with pending work.  Caller holds the lock."""
        while self._rotation:
            session_id = self._rotation.popleft()
            queue = self._queues.get(session_id)
            if not queue:
                self._queues.pop(session_id, None)
                continue
            job = queue.popleft()
            if queue:
                self._rotation.append(session_id)
            else:
                self._queues.pop(session_id, None)
            return job
        return None

    def _work(self) -> None:
        while True:
            with self._cv:
                job = self._next_job()
                while job is None and not self._closed:
                    self._cv.wait()
                    job = self._next_job()
                if job is None:
                    return  # closed and drained
                self._active += 1
            try:
                job.run()
            finally:
                with self._cv:
                    self._active -= 1
                    self._completed += 1
                    if job._exc is not None:
                        self._failed += 1

    # -- observability -------------------------------------------------------------

    def metrics(self) -> dict:
        with self._cv:
            return {
                "queue_depth": sum(len(q) for q in self._queues.values()),
                "active": self._active,
                "shed": self._shed,
                "completed": self._completed,
                "failed": self._failed,
                "max_workers": self.max_workers,
                "max_queue_depth": self.max_queue_depth,
            }

    @property
    def shed_count(self) -> int:
        with self._cv:
            return self._shed

    # -- lifecycle -----------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; fail whatever is still queued so no
        caller blocks forever, then (optionally) join the workers."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            orphaned = [job for queue in self._queues.values()
                        for job in queue]
            self._queues.clear()
            self._rotation.clear()
            self._cv.notify_all()
        for job in orphaned:
            job.fail(ServerError("admission controller shut down while "
                                 "the request was queued"))
        if wait:
            for worker in self._workers:
                worker.join(timeout=5.0)

    def __enter__(self) -> "AdmissionController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
