"""A thin blocking client for the JSON-lines wire protocol.

::

    with ServerClient(host, port) as client:
        result = client.query("SELECT count(*) FROM orders")
        print(result.rows)

Server-side errors are re-raised locally as the matching class from
:mod:`repro.errors` (``ServerOverloaded`` keeps its back-pressure detail),
so calling code handles wire and in-process execution uniformly.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Mapping, Optional, Sequence

from .. import errors as _errors
from ..algebra.datatypes import DataType
from ..errors import ProtocolError, ReproError
from ..governor import QueryStats
from .wire import decode_row, encode_value

_DTYPES = {d.value: d for d in DataType}


class ClientResult:
    """Rows plus schema as decoded from one query response."""

    __slots__ = ("names", "types", "rows", "degraded", "elapsed_seconds",
                 "stats")

    def __init__(self, payload: dict) -> None:
        self.names = payload["columns"]
        self.types = [_DTYPES.get(t, DataType.UNKNOWN)
                      for t in payload["types"]]
        self.rows = [decode_row(row) for row in payload["rows"]]
        self.degraded = payload["degraded"]
        self.elapsed_seconds = payload["elapsed_seconds"]
        #: Per-query execution statistics, rebuilt from the server's
        #: QueryStats.as_dict() (absent on pre-1.4 servers).
        self.stats = QueryStats.from_dict(payload.get("stats", {}))

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.names, row)) for row in self.rows]

    def scalar(self) -> Any:
        if len(self.rows) != 1 or len(self.names) != 1:
            raise ValueError(
                f"scalar() requires a 1x1 result, got {len(self.rows)} "
                f"row(s) x {len(self.names)} column(s)")
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"ClientResult({len(self.rows)} rows x {self.names})"


def _reconstruct_error(payload: dict) -> Exception:
    name = payload.get("type", "ServerError")
    message = payload.get("message", "unknown server error")
    if name == "ServerOverloaded":
        return _errors.ServerOverloaded(
            payload.get("reason", message),
            payload.get("limit", 0), payload.get("pending", 0))
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return _errors.ServerError(f"{name}: {message}")


class ServerClient:
    """One connection (= one server-side session), driven synchronously."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._closed = False

    # -- plumbing ------------------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request object, return the decoded ``ok`` response
        (raising the reconstructed error for a ``not ok`` one)."""
        if self._closed:
            raise ProtocolError("client connection is closed")
        self._sock.sendall(json.dumps(payload).encode() + b"\n")
        line = self._reader.readline()
        if not line:
            self._closed = True
            raise ProtocolError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise _reconstruct_error(response.get("error", {}))
        return response

    # -- operations ----------------------------------------------------------------

    def query(self, sql: str,
              params: Sequence[Any] | Mapping[str, Any] | None = None,
              mode: str | None = None,
              engine: str | None = None) -> ClientResult:
        payload: dict = {"op": "query", "sql": sql}
        if params is not None:
            if isinstance(params, Mapping):
                payload["params"] = {k: encode_value(v)
                                     for k, v in params.items()}
            else:
                payload["params"] = [encode_value(v) for v in params]
        if mode is not None:
            payload["mode"] = mode
        if engine is not None:
            payload["engine"] = engine
        return ClientResult(self.request(payload))

    def explain(self, sql: str, mode: str | None = None,
                costs: bool = False, *, analyze: bool = False,
                format: str = "text", engine: str | None = None,
                params: Sequence[Any] | Mapping[str, Any] | None = None
                ) -> "str | dict":
        """Server-side explain; mirrors :meth:`Database.explain`.

        Returns the rendered text, or a dict when ``format="dict"``.
        """
        payload: dict = {"op": "explain", "sql": sql, "costs": costs,
                         "analyze": analyze, "format": format}
        if mode is not None:
            payload["mode"] = mode
        if engine is not None:
            payload["engine"] = engine
        if params is not None:
            if isinstance(params, Mapping):
                payload["params"] = {k: encode_value(v)
                                     for k, v in params.items()}
            else:
                payload["params"] = [encode_value(v) for v in params]
        return self.request(payload)["plan"]

    def insert(self, table: str, rows: Sequence[Sequence[Any] | Mapping]
               ) -> int:
        encoded = [
            {k: encode_value(v) for k, v in row.items()}
            if isinstance(row, Mapping)
            else [encode_value(v) for v in row]
            for row in rows]
        return self.request(
            {"op": "insert", "table": table, "rows": encoded})["inserted"]

    def begin(self) -> None:
        self.request({"op": "begin"})

    def commit(self) -> None:
        self.request({"op": "commit"})

    def rollback(self) -> None:
        self.request({"op": "rollback"})

    def create_table(self, name: str, columns: Sequence[Sequence],
                     primary_key: Sequence[str] = (),
                     unique_keys: Sequence[Sequence[str]] = ()) -> None:
        specs = []
        for spec in columns:
            spec = list(spec)
            if len(spec) >= 2 and isinstance(spec[1], DataType):
                spec[1] = spec[1].value
            specs.append(spec)
        self.request({"op": "create_table", "name": name,
                      "columns": specs,
                      "primary_key": list(primary_key),
                      "unique_keys": [list(k) for k in unique_keys]})

    def create_index(self, name: str, table: str,
                     columns: Sequence[str], kind: str = "hash") -> None:
        self.request({"op": "create_index", "name": name, "table": table,
                      "columns": list(columns), "kind": kind})

    def drop_table(self, name: str) -> None:
        self.request({"op": "drop_table", "name": name})

    def metrics(self) -> dict:
        return self.request({"op": "metrics"})["metrics"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.request({"op": "close"})
        except Exception:
            pass  # best-effort goodbye; the socket teardown is what matters
        self._closed = True
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
