"""A thin blocking client for the JSON-lines wire protocol.

::

    with ServerClient(host, port) as client:
        result = client.query("SELECT count(*) FROM orders")
        print(result.rows)

Server-side errors are re-raised locally as the matching class from
:mod:`repro.errors` (``ServerOverloaded`` keeps its back-pressure detail),
so calling code handles wire and in-process execution uniformly.

Retries are opt-in via :class:`RetryPolicy`::

    client = ServerClient(host, port, retry=RetryPolicy(max_attempts=5))

Back-pressure (``ServerOverloaded``) is retried for every operation —
the server shed the request before running it.  Connection resets are
retried (with a transparent reconnect) only for idempotent operations
(``query``, ``explain``, ``metrics``, ``ping``, ``health``): a reset
mid-``insert`` or mid-``commit`` may have landed on the server, and
retrying could apply it twice.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from .. import errors as _errors
from ..algebra.datatypes import DataType
from ..errors import ProtocolError, ReproError, ServerOverloaded
from ..governor import QueryStats
from .wire import decode_row, encode_value

_DTYPES = {d.value: d for d in DataType}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seedable jitter.

    Attempt ``n`` (0-based) sleeps ``base_delay * multiplier**n``,
    capped at ``max_delay``, then stretched by a jitter factor drawn
    uniformly from ``[1 - jitter, 1 + jitter]``.  With a ``seed`` the
    whole delay sequence is reproducible — tests assert exact schedules
    instead of sleeping blind.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None
    #: Retry reconnectable transport failures (idempotent ops only);
    #: ``ServerOverloaded`` is always retried regardless.
    retry_connection_errors: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        base = min(self.base_delay * self.multiplier ** attempt,
                   self.max_delay)
        if self.jitter:
            base *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return base


class ClientResult:
    """Rows plus schema as decoded from one query response."""

    __slots__ = ("names", "types", "rows", "degraded", "elapsed_seconds",
                 "stats")

    def __init__(self, payload: dict) -> None:
        self.names = payload["columns"]
        self.types = [_DTYPES.get(t, DataType.UNKNOWN)
                      for t in payload["types"]]
        self.rows = [decode_row(row) for row in payload["rows"]]
        self.degraded = payload["degraded"]
        self.elapsed_seconds = payload["elapsed_seconds"]
        #: Per-query execution statistics, rebuilt from the server's
        #: QueryStats.as_dict() (absent on pre-1.4 servers).
        self.stats = QueryStats.from_dict(payload.get("stats", {}))

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.names, row)) for row in self.rows]

    def scalar(self) -> Any:
        if len(self.rows) != 1 or len(self.names) != 1:
            raise ValueError(
                f"scalar() requires a 1x1 result, got {len(self.rows)} "
                f"row(s) x {len(self.names)} column(s)")
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"ClientResult({len(self.rows)} rows x {self.names})"


def _reconstruct_error(payload: dict) -> Exception:
    name = payload.get("type", "ServerError")
    message = payload.get("message", "unknown server error")
    if name == "ServerOverloaded":
        return _errors.ServerOverloaded(
            payload.get("reason", message),
            payload.get("limit", 0), payload.get("pending", 0))
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return _errors.ServerError(f"{name}: {message}")


class ServerClient:
    """One connection (= one server-side session), driven synchronously."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry
        self._rng = retry.rng() if retry is not None else None
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._closed = False
        #: Distinguishes a deliberate close() from a lost connection:
        #: retries never resurrect a client the caller shut down.
        self._user_closed = False

    # -- plumbing ------------------------------------------------------------------

    def request(self, payload: dict, *, idempotent: bool = False) -> dict:
        """Send one request object, return the decoded ``ok`` response
        (raising the reconstructed error for a ``not ok`` one).

        With a :class:`RetryPolicy`, ``ServerOverloaded`` rejections are
        retried with backoff; transport failures additionally trigger a
        reconnect-and-retry, but only when the operation is declared
        ``idempotent``.
        """
        if self._retry is None:
            return self._request_once(payload)
        attempt = 0
        while True:
            try:
                return self._request_once(payload)
            except ServerOverloaded:
                if attempt >= self._retry.max_attempts - 1:
                    raise
            except (ConnectionError, OSError, ProtocolError) as exc:
                if not (idempotent and self._retry.retry_connection_errors
                        and self._connection_lost(exc)):
                    raise
                if attempt >= self._retry.max_attempts - 1:
                    raise
            time.sleep(self._retry.delay(attempt, self._rng))
            attempt += 1
            if self._closed and not self._user_closed:
                self._reconnect()

    def _request_once(self, payload: dict) -> dict:
        if self._closed:
            raise ProtocolError("client connection is closed")
        try:
            self._sock.sendall(json.dumps(payload).encode() + b"\n")
            line = self._reader.readline()
        except (ConnectionError, OSError):
            self._closed = True
            raise
        if not line:
            self._closed = True
            raise ProtocolError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise _reconstruct_error(response.get("error", {}))
        return response

    def _connection_lost(self, exc: BaseException) -> bool:
        """Failures a reconnect can fix: a dropped socket, never a
        deliberately closed client or a protocol-level dispute."""
        if self._user_closed:
            return False
        if isinstance(exc, ProtocolError):
            return "closed the connection" in str(exc)
        return True  # ConnectionError / OSError on the socket

    def _reconnect(self) -> None:
        try:
            self._reader.close()
            self._sock.close()
        except OSError:
            pass
        self._sock = socket.create_connection((self._host, self._port),
                                              timeout=self._timeout)
        self._reader = self._sock.makefile("rb")
        self._closed = False

    # -- operations ----------------------------------------------------------------

    def query(self, sql: str,
              params: Sequence[Any] | Mapping[str, Any] | None = None,
              mode: str | None = None,
              engine: str | None = None) -> ClientResult:
        payload: dict = {"op": "query", "sql": sql}
        if params is not None:
            if isinstance(params, Mapping):
                payload["params"] = {k: encode_value(v)
                                     for k, v in params.items()}
            else:
                payload["params"] = [encode_value(v) for v in params]
        if mode is not None:
            payload["mode"] = mode
        if engine is not None:
            payload["engine"] = engine
        return ClientResult(self.request(payload, idempotent=True))

    def explain(self, sql: str, mode: str | None = None,
                costs: bool = False, *, analyze: bool = False,
                format: str = "text", engine: str | None = None,
                params: Sequence[Any] | Mapping[str, Any] | None = None
                ) -> "str | dict":
        """Server-side explain; mirrors :meth:`Database.explain`.

        Returns the rendered text, or a dict when ``format="dict"``.
        """
        payload: dict = {"op": "explain", "sql": sql, "costs": costs,
                         "analyze": analyze, "format": format}
        if mode is not None:
            payload["mode"] = mode
        if engine is not None:
            payload["engine"] = engine
        if params is not None:
            if isinstance(params, Mapping):
                payload["params"] = {k: encode_value(v)
                                     for k, v in params.items()}
            else:
                payload["params"] = [encode_value(v) for v in params]
        return self.request(payload, idempotent=True)["plan"]

    def insert(self, table: str, rows: Sequence[Sequence[Any] | Mapping]
               ) -> int:
        encoded = [
            {k: encode_value(v) for k, v in row.items()}
            if isinstance(row, Mapping)
            else [encode_value(v) for v in row]
            for row in rows]
        return self.request(
            {"op": "insert", "table": table, "rows": encoded})["inserted"]

    def begin(self) -> None:
        self.request({"op": "begin"})

    def commit(self) -> None:
        self.request({"op": "commit"})

    def rollback(self) -> None:
        self.request({"op": "rollback"})

    def create_table(self, name: str, columns: Sequence[Sequence],
                     primary_key: Sequence[str] = (),
                     unique_keys: Sequence[Sequence[str]] = ()) -> None:
        specs = []
        for spec in columns:
            spec = list(spec)
            if len(spec) >= 2 and isinstance(spec[1], DataType):
                spec[1] = spec[1].value
            specs.append(spec)
        self.request({"op": "create_table", "name": name,
                      "columns": specs,
                      "primary_key": list(primary_key),
                      "unique_keys": [list(k) for k in unique_keys]})

    def create_index(self, name: str, table: str,
                     columns: Sequence[str], kind: str = "hash") -> None:
        self.request({"op": "create_index", "name": name, "table": table,
                      "columns": list(columns), "kind": kind})

    def drop_table(self, name: str) -> None:
        self.request({"op": "drop_table", "name": name})

    def metrics(self) -> dict:
        return self.request({"op": "metrics"},
                            idempotent=True)["metrics"]

    def health(self) -> dict:
        """The server's liveness/readiness snapshot (``health`` op)."""
        return self.request({"op": "health"}, idempotent=True)["health"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"},
                                 idempotent=True).get("pong"))

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        self._user_closed = True
        if self._closed:
            return
        try:
            self.request({"op": "close"})
        except Exception:
            pass  # best-effort goodbye; the socket teardown is what matters
        self._closed = True
        self._reader.close()
        self._sock.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
