"""The paper's primary contribution: normalization (decorrelation) and
cost-based optimization of subqueries and aggregation."""
