"""Selection pushdown.

Sinks filter conjuncts toward the leaves: through projections (by
substitution), into join inputs, through GroupBy when the columns are
grouping columns (the filter/GroupBy condition of paper Section 3.1), and
into UNION ALL branches.  Conjuncts that land on an inner join become the
join predicate — which is what exposes equality columns to the hash-join
and index-lookup implementation rules.
"""

from __future__ import annotations

from typing import Iterable

from ...algebra import (Apply, ColumnRef, Difference, GroupBy, Join,
                        JoinKind, LocalGroupBy, Max1row, Project,
                        RelationalOp, ScalarExpr, ScalarGroupBy,
                        SegmentApply, Select, Sort, Top, UnionAll,
                        conjunction, conjuncts)


def push_selections(rel: RelationalOp) -> RelationalOp:
    """Push filters down as far as semantics allow."""
    return _attach(_walk(rel, []), [])


def factor_conjuncts(parts: list[ScalarExpr]) -> list[ScalarExpr]:
    """Hoist conjuncts common to every branch of a disjunction:
    ``(A ∧ x) ∨ (A ∧ y)  →  A ∧ (x ∨ y)``  (valid in Kleene 3VL by
    distributivity).  This is what lets TPC-H Q19's OR-of-ANDs predicate
    expose its shared ``p_partkey = l_partkey`` equijoin conjunct."""
    from ...algebra import Or
    from ...algebra.scalar import disjuncts

    result: list[ScalarExpr] = []
    for part in parts:
        if not isinstance(part, Or):
            result.append(part)
            continue
        branches = disjuncts(part)
        branch_conjuncts = [conjuncts(branch) for branch in branches]
        first = branch_conjuncts[0]
        common = [c for c in first
                  if all(any(c == other for other in branch)
                         for branch in branch_conjuncts[1:])]
        if not common:
            result.append(part)
            continue
        result.extend(common)
        residual_branches = []
        for branch in branch_conjuncts:
            remaining = [c for c in branch
                         if not any(c == kept for kept in common)]
            residual_branches.append(conjunction(remaining))
        result.append(Or(residual_branches))
    return result


def _attach(rel: RelationalOp, pending: list[ScalarExpr]) -> RelationalOp:
    if not pending:
        return rel
    return Select(rel, conjunction(pending))


def _subset(part: ScalarExpr, rel: RelationalOp) -> bool:
    return part.free_columns().ids() <= frozenset(
        c.cid for c in rel.output_columns())


def _walk(rel: RelationalOp, pending: list[ScalarExpr]) -> RelationalOp:
    if isinstance(rel, Select):
        merged = factor_conjuncts(pending + conjuncts(rel.predicate))
        return _walk(rel.child, merged)

    if isinstance(rel, Project):
        mapping = {c.cid: e for c, e in rel.items}
        if all(p.free_columns().ids() <= frozenset(mapping) for p in pending):
            rewritten = [p.substitute_columns(mapping) for p in pending]
            return Project(_walk(rel.child, rewritten), rel.items)
        return _attach(Project(_walk(rel.child, []), rel.items), pending)

    if isinstance(rel, Join):
        return _walk_join(rel, pending)

    if isinstance(rel, Apply):
        to_left = [p for p in pending if _subset(p, rel.left)]
        stay = [p for p in pending if not _subset(p, rel.left)]
        left = _walk(rel.left, to_left)
        right = _walk(rel.right, [])
        return _attach(Apply(rel.kind, left, right, rel.predicate,
                             rel.guard), stay)

    if isinstance(rel, (GroupBy, LocalGroupBy)):
        # Section 3.1: a filter moves below a GroupBy iff its columns are
        # functionally determined by the grouping columns.  Filters above a
        # GroupBy can only reference its outputs, so this reduces to
        # "references grouping columns only" (anything else touches an
        # aggregate result and must stay).
        group_ids = frozenset(c.cid for c in rel.group_columns)
        down = [p for p in pending if p.free_columns().ids() <= group_ids]
        stay = [p for p in pending
                if not p.free_columns().ids() <= group_ids]
        child = _walk(rel.child, down)
        return _attach(rel.with_children([child]), stay)

    if isinstance(rel, ScalarGroupBy):
        child = _walk(rel.child, [])
        return _attach(ScalarGroupBy(child, rel.aggregates), pending)

    if isinstance(rel, Sort):
        return Sort(_walk(rel.child, pending), rel.keys)

    if isinstance(rel, (Top, Max1row)):
        # Filtering earlier would change which rows pass Top / trigger the
        # Max1row error; block.
        (child,) = rel.children
        return _attach(rel.with_children([_walk(child, [])]), pending)

    if isinstance(rel, UnionAll):
        new_inputs = []
        for source, imap in zip(rel.inputs, rel.input_maps):
            mapping = {out.cid: ColumnRef(src)
                       for out, src in zip(rel.columns, imap)}
            branch_pending = [p.substitute_columns(mapping) for p in pending]
            new_inputs.append(_walk(source, branch_pending))
        return UnionAll(new_inputs, rel.columns, rel.input_maps)

    if isinstance(rel, Difference):
        left_map = {out.cid: ColumnRef(src)
                    for out, src in zip(rel.columns, rel.left_map)}
        right_map = {out.cid: ColumnRef(src)
                     for out, src in zip(rel.columns, rel.right_map)}
        left = _walk(rel.left,
                     [p.substitute_columns(left_map) for p in pending])
        right = _walk(rel.right,
                      [p.substitute_columns(right_map) for p in pending])
        return Difference(left, right, rel.columns, rel.left_map,
                          rel.right_map)

    if isinstance(rel, SegmentApply):
        seg_ids = frozenset(c.cid for c in rel.segment_columns)
        down = [p for p in pending if p.free_columns().ids() <= seg_ids]
        stay = [p for p in pending
                if not p.free_columns().ids() <= seg_ids]
        # Segment-column filters drop whole segments — safe to push left.
        left = _walk(rel.left, down)
        right = _walk(rel.right, [])
        return _attach(SegmentApply(left, right, rel.segment_columns,
                                    rel.inner_columns), stay)

    # Leaves and anything unknown: keep the filters right above.
    children = [_walk(c, []) for c in rel.children]
    if any(n is not o for n, o in zip(children, rel.children)):
        rel = rel.with_children(children)
    return _attach(rel, pending)


def _walk_join(rel: Join, pending: list[ScalarExpr]) -> RelationalOp:
    parts = factor_conjuncts(list(pending))
    on_parts = (factor_conjuncts(conjuncts(rel.predicate))
                if rel.predicate is not None else [])

    if rel.kind is JoinKind.INNER:
        pool = parts + on_parts
        to_left = [p for p in pool if _subset(p, rel.left)]
        rest = [p for p in pool if not _subset(p, rel.left)]
        to_right = [p for p in rest if _subset(p, rel.right)]
        stay = [p for p in rest if not _subset(p, rel.right)]
        left = _walk(rel.left, to_left)
        right = _walk(rel.right, to_right)
        return Join(JoinKind.INNER, left, right,
                    conjunction(stay) if stay else None)

    if rel.kind is JoinKind.LEFT_OUTER:
        # Filters above an LOJ referencing only the left side push left;
        # right-side filters above must stay (they see padded NULLs).
        to_left = [p for p in parts if _subset(p, rel.left)]
        stay = [p for p in parts if not _subset(p, rel.left)]
        # ON-clause conjuncts referencing only the right side sink right.
        on_right = [p for p in on_parts if _subset(p, rel.right)]
        on_stay = [p for p in on_parts if not _subset(p, rel.right)]
        left = _walk(rel.left, to_left)
        right = _walk(rel.right, on_right)
        joined = Join(JoinKind.LEFT_OUTER, left, right,
                      conjunction(on_stay) if on_stay else None)
        return _attach(joined, stay)

    # Semi/anti joins: output is the left side.
    to_left = [p for p in parts if _subset(p, rel.left)]
    stay = [p for p in parts if not _subset(p, rel.left)]
    on_right = [p for p in on_parts if _subset(p, rel.right)]
    on_stay = [p for p in on_parts if not _subset(p, rel.right)]
    left = _walk(rel.left, to_left)
    right = _walk(rel.right, on_right)
    joined = Join(rel.kind, left, right,
                  conjunction(on_stay) if on_stay else None)
    return _attach(joined, stay)
