"""Segmented execution — paper Section 3.4.

``SegmentApply`` introduction looks for "two instances of an expression
connected by a join, where one of the expressions may optionally have an
extra aggregate and/or an extra filter", keyed by "a conjunct in the join
predicate that is an equality comparison between two instances of the same
column" (Section 3.4.1).  Structural equivalence is checked with
``plan_signature`` (plan shape modulo column identities).

Two placements are generated:

* the direct Figure-6 form — the aggregated branch's input matches the
  *whole* other join input;
* the Figure-7 form — the input matches one branch ``T`` of the other
  side's join ``T ⋈q U``, which is sound when ``q`` joins on the segment
  column (all-or-none per segment) and either ``U`` is unique on its join
  columns or every aggregate is invariant under uniform duplication
  (avg/min/max) — this is exactly the paper's join-pushdown-below-
  SegmentApply result, derived directly.

``push_join_below_segment_apply`` implements the Section 3.4.2 rewrite
``(R SA_A E) ⋈p T = (R ⋈p T) SA_{A∪columns(T)} E`` as a separate step so
the Figure 6 → Figure 7 derivation can also be exercised explicitly.

All rewrites here are *alternative generators*: the driver optimizes every
variant and keeps the cheapest plan.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...algebra import (AggregateCall, Column, ColumnRef, Comparison,
                        GroupBy, Join, JoinKind, Project, RelationalOp,
                        ScalarGroupBy, SegmentApply, SegmentRef, Select,
                        collect_nodes, conjunction, conjuncts, derive_fds,
                        derive_keys, plan_signature, transform_bottom_up)


def segment_alternatives(rel: RelationalOp,
                         max_variants: int = 8) -> list[RelationalOp]:
    """Whole-tree variants that use SegmentApply somewhere.

    SegmentApply patterns surface only once the GroupBy has moved below
    the join (Kim-style aggregate-then-join shape), so tree-level GroupBy
    pushdown variants are generated first and introduction is attempted on
    each.
    """
    variants: list[RelationalOp] = []
    seen: set[str] = {plan_signature(rel)}

    def consider(tree: RelationalOp) -> None:
        signature = plan_signature(tree)
        if signature not in seen and len(variants) < max_variants:
            seen.add(signature)
            variants.append(tree)

    bases = [rel] + _groupby_pushdown_variants(rel)
    for base in bases:
        for candidate in _introduce_everywhere(base):
            consider(candidate)
            for pushed in _push_joins_below(candidate):
                consider(pushed)
    return variants


def _groupby_pushdown_variants(rel: RelationalOp) -> list[RelationalOp]:
    """Tree-level application of the Section 3.1/3.2 pushdown, to expose
    the join-of-two-instances pattern."""
    from .rules import GroupByPushBelowJoin

    rule = GroupByPushBelowJoin()
    results: list[RelationalOp] = []

    def visit(node: RelationalOp, rebuild) -> None:
        if isinstance(node, GroupBy) and isinstance(node.child, Join):
            for rewritten in rule.apply(node, memo=None):
                results.append(rebuild(rewritten))
        for i, child in enumerate(node.children):
            def child_rebuild(new_child, i=i, node=node):
                children = list(node.children)
                children[i] = new_child
                return rebuild(node.with_children(children))
            visit(child, child_rebuild)

    visit(rel, lambda n: n)
    return results


# ---------------------------------------------------------------------------
# Introduction (Section 3.4.1)
# ---------------------------------------------------------------------------

def _introduce_everywhere(rel: RelationalOp) -> list[RelationalOp]:
    """Each possible single SegmentApply introduction, as a whole tree."""
    results: list[RelationalOp] = []

    def visit(node: RelationalOp, rebuild) -> None:
        if isinstance(node, Join) and node.kind is JoinKind.INNER:
            replacement = _try_introduce(node)
            if replacement is not None:
                results.append(rebuild(replacement))
        for i, child in enumerate(node.children):
            def child_rebuild(new_child, i=i, node=node):
                children = list(node.children)
                children[i] = new_child
                return rebuild(node.with_children(children))
            visit(child, child_rebuild)

    visit(rel, lambda n: n)
    return results


def _try_introduce(join: Join) -> Optional[RelationalOp]:
    for left, right, swapped in ((join.left, join.right, False),
                                 (join.right, join.left, True)):
        built = _introduce_for(left, right, join, swapped)
        if built is not None:
            return built
    return None


def _introduce_for(outer: RelationalOp, agg_branch: RelationalOp,
                   join: Join, swapped: bool) -> Optional[RelationalOp]:
    """Try SegmentApply with ``outer`` segmented and ``agg_branch`` being
    the aggregated instance."""
    stripped = _strip_aggregate_branch(agg_branch)
    if stripped is None:
        return None
    groupby, wrappers = stripped
    core = groupby.child

    # Where inside `outer` does the aggregated input match?
    anchors = [outer]
    passthrough_unique = {}
    if isinstance(outer, Join) and outer.kind is JoinKind.INNER:
        anchors.extend([outer.left, outer.right])
    for anchor in anchors:
        mapping = _signature_mapping(core, anchor)
        if mapping is None:
            continue
        built = _build_segment_apply(outer, anchor, mapping, groupby,
                                     wrappers, join, swapped)
        if built is not None:
            return built
    return None


def _strip_aggregate_branch(branch: RelationalOp):
    """Peel [Project] [Select] off a GroupBy branch; reject other shapes."""
    wrappers: list[RelationalOp] = []
    node = branch
    for _ in range(3):
        if isinstance(node, (Project, Select)):
            wrappers.append(node)
            node = node.children[0]
            continue
        break
    if isinstance(node, GroupBy):
        return node, wrappers
    return None


def _signature_mapping(core: RelationalOp,
                       anchor: RelationalOp) -> Optional[dict[int, Column]]:
    """Positional output mapping core→anchor when shapes coincide."""
    if plan_signature(core) != plan_signature(anchor):
        return None
    core_out = core.output_columns()
    anchor_out = anchor.output_columns()
    if len(core_out) != len(anchor_out):
        return None
    return {c.cid: a for c, a in zip(core_out, anchor_out)}


def _build_segment_apply(outer: RelationalOp, anchor: RelationalOp,
                         mapping: dict[int, Column], groupby: GroupBy,
                         wrappers: list[RelationalOp], join: Join,
                         swapped: bool) -> Optional[RelationalOp]:
    branch_cols = {c.cid for c in _branch_output(groupby, wrappers)}
    outer_ids = {c.cid for c in outer.output_columns()}

    # Find the segmenting equality conjuncts.
    segment_pairs: list[tuple[Column, Column]] = []  # (outer col, core col)
    residual: list = []
    predicate_parts = (conjuncts(join.predicate)
                       if join.predicate is not None else [])
    group_to_core = {}
    for gc in groupby.group_columns:
        group_to_core[gc.cid] = gc  # group cols pass through from core
    fds = derive_fds(outer)
    for part in predicate_parts:
        pair = _segment_equality(part, outer_ids, branch_cols,
                                 groupby, mapping, fds, outer)
        if pair is not None:
            segment_pairs.append(pair)
        else:
            residual.append(part)
    if not segment_pairs:
        return None

    # If the anchor is a proper branch of `outer`, verify the all-or-none
    # and duplication conditions for the other branch.
    if anchor is not outer:
        if not _intermediate_join_safe(outer, anchor, segment_pairs,
                                       groupby):
            return None

    # Build the parameterized inner tree over a shared SegmentRef.
    inner_columns = [c.fresh_copy() for c in outer.output_columns()]
    outer_to_inner = {c.cid: ic for c, ic in
                      zip(outer.output_columns(), inner_columns)}
    seg_ref_left = SegmentRef(inner_columns)

    # Aggregated instance: replace `core` with the segment, remapping the
    # core's columns through anchor position to the segment mirror.
    core_to_inner = {}
    for core_cid, anchor_col in mapping.items():
        core_to_inner[core_cid] = ColumnRef(outer_to_inner[anchor_col.cid])
    grouped_mirrors = [_as_column(core_to_inner[c.cid])
                       for c in groupby.group_columns]
    agg_over_segment: RelationalOp = GroupBy(
        SegmentRef(inner_columns),
        grouped_mirrors,
        [(col, _remap_call(call, core_to_inner))
         for col, call in groupby.aggregates])
    # The grouping outputs get fresh identities: the left SegmentRef of
    # the inner join already delivers the mirrors, and a join must not
    # receive the same column from both inputs.
    fresh_groups = [c.fresh_copy() for c in grouped_mirrors]
    rename_items = [(fresh, ColumnRef(mirror)) for fresh, mirror
                    in zip(fresh_groups, grouped_mirrors)]
    rename_items += [(col, ColumnRef(col)) for col, _ in groupby.aggregates]
    agg_over_segment = Project(agg_over_segment, rename_items)
    group_rename = {gc.cid: fresh for gc, fresh
                    in zip(groupby.group_columns, fresh_groups)}
    for wrapper in reversed(wrappers):
        if isinstance(wrapper, Select):
            pred = wrapper.predicate.substitute_columns(
                {cid: ColumnRef(col) for cid, col in group_rename.items()})
            agg_over_segment = Select(agg_over_segment, pred)
        else:
            items = [(c, e.substitute_columns(
                {cid: ColumnRef(col) for cid, col in group_rename.items()}))
                for c, e in wrapper.items]
            agg_over_segment = Project(agg_over_segment, items)

    # The join inside the segment: segment rows vs their aggregate.
    # Residual conjuncts may reference outer columns (→ their mirrors)
    # or the branch's grouping columns (→ their fresh renames).
    rename_for_pred = {c.cid: ColumnRef(outer_to_inner[c.cid])
                       for c in outer.output_columns()}
    for gc_cid, fresh in group_rename.items():
        rename_for_pred[gc_cid] = ColumnRef(fresh)
    inner_parts = []
    for part in residual:
        inner_parts.append(part.substitute_columns(rename_for_pred))
    for outer_col, _ in segment_pairs:
        pass  # segment equalities hold by construction inside a segment
    inner_predicate = conjunction(inner_parts) if inner_parts else None
    inner_join = Join(JoinKind.INNER, seg_ref_left, agg_over_segment,
                      inner_predicate)

    branch_out = _branch_output(groupby, wrappers)
    segment_cols = [pair[0] for pair in segment_pairs]
    segment_apply = SegmentApply(outer, inner_join, segment_cols,
                                 inner_columns)

    # Restore the original join's output columns.  Segment columns are
    # delivered by the SegmentApply itself, so they stay identity items
    # (re-deriving them from the mirrors would shadow the child's output).
    segment_ids = {c.cid for c in segment_cols}
    items = []
    for column in join.output_columns():
        if column.cid in segment_ids:
            items.append((column, ColumnRef(column)))
        elif column.cid in outer_to_inner:
            items.append((column, ColumnRef(outer_to_inner[column.cid])))
        elif column.cid in group_rename:
            items.append((column, ColumnRef(group_rename[column.cid])))
        else:
            items.append((column, ColumnRef(column)))
    return Project(segment_apply, items)


def _branch_output(groupby: GroupBy, wrappers: list[RelationalOp]):
    if wrappers:
        return wrappers[0].output_columns()
    return groupby.output_columns()


def _as_column(ref: ColumnRef) -> Column:
    return ref.column


def _remap_call(call: AggregateCall, mapping) -> AggregateCall:
    if call.argument is None:
        return call
    return AggregateCall(call.func,
                         call.argument.substitute_columns(mapping),
                         call.distinct)


def _segment_equality(part, outer_ids, branch_ids, groupby: GroupBy,
                      mapping, fds, outer) -> Optional[tuple[Column, Column]]:
    """Match ``outer_col = group_col`` where both are instances of the same
    underlying column (directly or via FDs of the outer side)."""
    if not (isinstance(part, Comparison) and part.op == "="
            and isinstance(part.left, ColumnRef)
            and isinstance(part.right, ColumnRef)):
        return None
    a, b = part.left.column, part.right.column
    if a.cid in outer_ids and b.cid in branch_ids:
        outer_col, branch_col = a, b
    elif b.cid in outer_ids and a.cid in branch_ids:
        outer_col, branch_col = b, a
    else:
        return None
    # The branch column must be a grouping column passing through from core.
    if branch_col.cid not in {gc.cid for gc in groupby.group_columns}:
        return None
    anchor_col = mapping.get(branch_col.cid)
    if anchor_col is None:
        return None
    if anchor_col.cid == outer_col.cid:
        return anchor_col, branch_col
    # FD-equivalence inside the outer side (e.g. l_partkey ≡ p_partkey).
    if fds.determines({outer_col.cid}, {anchor_col.cid}) and \
            fds.determines({anchor_col.cid}, {outer_col.cid}):
        return anchor_col, branch_col
    return None


def _intermediate_join_safe(outer: RelationalOp, anchor: RelationalOp,
                            segment_pairs, groupby: GroupBy) -> bool:
    """Figure-7 condition: the join combining the matched branch with the
    rest must be all-or-none per segment, and must not scale aggregates
    unless they are duplication-invariant."""
    if not (isinstance(outer, Join) and outer.kind is JoinKind.INNER):
        return False
    other = outer.right if anchor is outer.left else outer.left
    other_ids = {c.cid for c in other.output_columns()}
    anchor_ids = {c.cid for c in anchor.output_columns()}
    segment_ids = {pair[0].cid for pair in segment_pairs}

    parts = (conjuncts(outer.predicate)
             if outer.predicate is not None else [])
    other_join_cols: set[int] = set()
    for part in parts:
        ids = part.free_columns().ids()
        if ids <= other_ids:
            continue  # pre-filter of the other side: fine
        if (isinstance(part, Comparison) and part.op == "="
                and isinstance(part.left, ColumnRef)
                and isinstance(part.right, ColumnRef)):
            x, y = part.left.column, part.right.column
            if x.cid in anchor_ids and y.cid in other_ids:
                anchor_side, other_side = x, y
            elif y.cid in anchor_ids and x.cid in other_ids:
                anchor_side, other_side = y, x
            else:
                return False
            # all-or-none: the anchor side must be a segment column (or
            # FD-equal to one).
            fds = derive_fds(anchor)
            if anchor_side.cid not in segment_ids and not any(
                    fds.determines({anchor_side.cid}, {sid})
                    and fds.determines({sid}, {anchor_side.cid})
                    for sid in segment_ids & anchor_ids):
                # Segment columns may live on the other side (FD-equated);
                # accept if the pair's outer column IS this other column.
                if anchor_side.cid not in {p[0].cid for p in segment_pairs}:
                    return False
            other_join_cols.add(other_side.cid)
            continue
        return False  # non-equality cross-side predicate filters partially

    if not other_join_cols:
        return False
    # k ≤ 1 (other side unique on its join columns) or duplication-invariant
    # aggregates only.
    unique = any(key <= other_join_cols for key in derive_keys(other))
    if unique:
        return True
    return all(call.descriptor.duplicate_insensitive
               for _, call in groupby.aggregates)


# ---------------------------------------------------------------------------
# Join pushdown below SegmentApply (Section 3.4.2)
# ---------------------------------------------------------------------------

def _push_joins_below(rel: RelationalOp) -> list[RelationalOp]:
    """All variants obtained by pushing one join below one SegmentApply."""
    results: list[RelationalOp] = []

    def visit(node: RelationalOp, rebuild) -> None:
        if isinstance(node, Join) and node.kind is JoinKind.INNER:
            for sa_side, t_side, swapped in (
                    (node.left, node.right, False),
                    (node.right, node.left, True)):
                if isinstance(sa_side, SegmentApply):
                    pushed = push_join_below_segment_apply(
                        node, sa_side, t_side)
                    if pushed is not None:
                        results.append(rebuild(pushed))
        for i, child in enumerate(node.children):
            def child_rebuild(new_child, i=i, node=node):
                children = list(node.children)
                children[i] = new_child
                return rebuild(node.with_children(children))
            visit(child, child_rebuild)

    visit(rel, lambda n: n)
    return results


def push_join_below_segment_apply(join: Join, sa: SegmentApply,
                                  other: RelationalOp
                                  ) -> Optional[RelationalOp]:
    """``(R SA_A E) ⋈p T = (R ⋈p T) SA_{A∪columns(T)} E``
    iff ``columns(p) ⊆ A ∪ columns(T)``."""
    allowed = ({c.cid for c in sa.segment_columns}
               | {c.cid for c in other.output_columns()})
    if join.predicate is not None and \
            not join.predicate.free_columns().ids() <= allowed:
        return None

    new_left = Join(JoinKind.INNER, sa.left, other, join.predicate)
    t_mirrors = [c.fresh_copy() for c in other.output_columns()]
    new_inner_columns = list(sa.inner_columns) + t_mirrors
    new_ref = SegmentRef(new_inner_columns)

    old_ref_ids = frozenset(c.cid for c in sa.inner_columns)

    def replace_ref(node: RelationalOp) -> RelationalOp:
        if isinstance(node, SegmentRef) and \
                frozenset(c.cid for c in node.columns) == old_ref_ids:
            return Project.passthrough(SegmentRef(new_inner_columns),
                                       node.columns)
        return node

    new_right = transform_bottom_up(sa.right, replace_ref)
    new_segment_cols = list(sa.segment_columns) + list(
        other.output_columns())
    new_sa = SegmentApply(new_left, new_right, new_segment_cols,
                          new_inner_columns)
    return Project.passthrough(new_sa, join.output_columns())
