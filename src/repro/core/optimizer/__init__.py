"""Cost-based optimization: memo, rules, cardinality, cost, segmentation."""

from .cardinality import ColumnEstimate, Estimate, Estimator
from .implementation import CostedPlan, Implementer
from .memo import Group, GroupExpr, GroupRefLeaf, Memo
from .optimizer import Optimizer, OptimizerConfig
from .pushdown import push_selections
from .rules import DEFAULT_RULES, Rule
from .segment import push_join_below_segment_apply, segment_alternatives

__all__ = ["ColumnEstimate", "CostedPlan", "DEFAULT_RULES", "Estimate",
           "Estimator", "Group", "GroupExpr", "GroupRefLeaf", "Implementer",
           "Memo", "Optimizer", "OptimizerConfig", "Rule",
           "push_join_below_segment_apply", "push_selections",
           "segment_alternatives"]
