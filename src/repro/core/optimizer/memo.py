"""Memo structure for cost-based optimization.

A compact Volcano/Cascades-style memo (paper Section 4: "The architecture
of our cost-based optimizer follows the main lines of the Volcano
optimizer, so that generation of interesting reorderings is done by means
of transformation rules"):

* a :class:`Group` holds logically equivalent expressions with identical
  output columns, plus cached logical properties (estimate, keys, FDs) and
  the best physical plan once implemented;
* a :class:`GroupExpr` is one operator whose relational children are
  :class:`GroupRefLeaf` placeholders;
* duplicate detection is structural (operator label + child group ids),
  which terminates exploration.

``SegmentApply`` keeps its parameterized inner tree embedded in the
expression (only its relational input joins the memo) — the inner tree is
optimized recursively at implementation time with per-segment statistics.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ... import faultinject
from ...algebra import (Column, RelationalOp, SegmentApply, derive_fds,
                        derive_keys)
from ...algebra.funcdeps import FDSet
from .cardinality import Estimate, Estimator


class GroupRefLeaf(RelationalOp):
    """A leaf standing for a memo group inside a GroupExpr.

    Carries the group's cached logical properties so property derivation
    (keys, FDs, outer references / correlation) works on materialized
    bindings without descending into the group.
    """

    __slots__ = ("group_id", "_columns", "memo_keys", "memo_fds",
                 "memo_outer")

    def __init__(self, group_id: int, columns: list[Column],
                 keys: list[frozenset[int]], fds: FDSet,
                 outer) -> None:
        super().__init__()
        self.group_id = group_id
        self._columns = list(columns)
        self.memo_keys = list(keys)
        self.memo_fds = fds
        self.memo_outer = outer

    def output_columns(self) -> list[Column]:
        return list(self._columns)

    def produced_columns(self) -> list[Column]:
        return list(self._columns)

    def outer_references(self):
        return self.memo_outer

    def label(self) -> str:
        return f"Group#{self.group_id}"


class GroupExpr:
    """One logical operator with grouped children."""

    __slots__ = ("op", "child_groups", "key")

    def __init__(self, op: RelationalOp, child_groups: list[int],
                 key: tuple) -> None:
        self.op = op
        self.child_groups = child_groups
        self.key = key

    def __repr__(self) -> str:
        return f"GroupExpr({self.op.label()}, children={self.child_groups})"


class Group:
    """A set of logically equivalent expressions."""

    __slots__ = ("group_id", "columns", "exprs", "estimate", "keys", "fds",
                 "outer", "best")

    def __init__(self, group_id: int, columns: list[Column],
                 estimate: Estimate, keys: list[frozenset[int]],
                 fds: FDSet, outer) -> None:
        self.group_id = group_id
        self.columns = columns
        self.exprs: list[GroupExpr] = []
        self.estimate = estimate
        self.keys = keys
        self.fds = fds
        self.outer = outer
        self.best = None  # set by implementation: (cost, plan)


class Memo:
    """Groups plus structural deduplication."""

    def __init__(self, estimator_factory: Callable[..., Estimator],
                 governor=None) -> None:
        self.groups: list[Group] = []
        self._expr_to_group: dict[tuple, int] = {}
        self._estimator_factory = estimator_factory
        #: Optional ResourceGovernor enforcing the memo-group cap.
        self.governor = governor
        #: Exploration hook: called with (GroupExpr, group_id) for every
        #: expression added anywhere in the memo — including child
        #: expressions materialized while canonicalizing a rule's result.
        self.on_new_expr: Optional[Callable[[GroupExpr, int], None]] = None

    def group(self, group_id: int) -> Group:
        return self.groups[group_id]

    def group_ref(self, group_id: int) -> GroupRefLeaf:
        group = self.groups[group_id]
        return GroupRefLeaf(group_id, group.columns, group.keys, group.fds,
                            group.outer)

    # -- insertion ---------------------------------------------------------------

    def insert_tree(self, rel: RelationalOp,
                    target_group: Optional[int] = None) -> int:
        """Insert a logical tree; returns its group id.

        Children are inserted recursively; identical expressions dedupe.
        When ``target_group`` is given, the root is added to that group
        (used by transformation rules).
        """
        faultinject.hit("optimizer.memo")
        canonical = self._canonicalize(rel)
        key = _expr_key(canonical.op, canonical.child_groups)
        existing = self._expr_to_group.get(key)
        if existing is not None:
            return existing

        if target_group is None:
            group = self._new_group(canonical.op)
            target_group = group.group_id
        self._expr_to_group[key] = target_group
        canonical.key = key
        self.groups[target_group].exprs.append(canonical)
        if self.on_new_expr is not None:
            self.on_new_expr(canonical, target_group)
        return target_group

    def add_expr_to_group(self, rel: RelationalOp,
                          group_id: int) -> Optional[GroupExpr]:
        """Insert a transformed tree into an existing group.

        Returns the new GroupExpr, or None when it already existed.
        """
        canonical = self._canonicalize(rel)
        key = _expr_key(canonical.op, canonical.child_groups)
        if key in self._expr_to_group:
            return None
        self._expr_to_group[key] = group_id
        canonical.key = key
        self.groups[group_id].exprs.append(canonical)
        if self.on_new_expr is not None:
            self.on_new_expr(canonical, group_id)
        return canonical

    def _canonicalize(self, rel: RelationalOp) -> GroupExpr:
        """Replace relational children by group references."""
        if isinstance(rel, GroupRefLeaf):
            # A bare reference: wrap transparently (caller dedups upstream).
            raise ValueError("cannot canonicalize a bare group reference")

        if isinstance(rel, SegmentApply):
            left_id = self._child_group(rel.left)
            op = rel.with_children([self.group_ref(left_id), rel.right])
            return GroupExpr(op, [left_id], ())

        child_ids = [self._child_group(c) for c in rel.children]
        if child_ids:
            refs = [self.group_ref(cid) for cid in child_ids]
            op = rel.with_children(refs)
        else:
            op = rel
        return GroupExpr(op, child_ids, ())

    def _child_group(self, child: RelationalOp) -> int:
        if isinstance(child, GroupRefLeaf):
            return child.group_id
        return self.insert_tree(child)

    def _new_group(self, op: RelationalOp) -> Group:
        estimator = self._estimator_factory(
            group_lookup=lambda ref: self.groups[ref.group_id].estimate)
        estimate = estimator.estimate(op)
        keys = derive_keys(op)
        fds = derive_fds(op)
        outer = op.outer_references()
        group = Group(len(self.groups), op.output_columns(), estimate,
                      keys, fds, outer)
        self.groups.append(group)
        if self.governor is not None:
            self.governor.note_memo_groups(len(self.groups))
        return group


def _expr_key(op: RelationalOp, child_groups: list[int]) -> tuple:
    # The label carries the operator's own expressions with column ids;
    # output column ids distinguish otherwise identical leaves (self-join
    # instances of a table have disjoint columns).  SegmentApply embeds its
    # inner tree in the expression, so that tree joins the key.
    out_ids = tuple(c.cid for c in op.output_columns())
    extra = ""
    if isinstance(op, SegmentApply):
        from ...algebra import explain
        extra = explain(op.right)
    return (type(op).__name__, op.label(), extra, out_ids,
            tuple(child_groups))
