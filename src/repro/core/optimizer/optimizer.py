"""Cost-based optimizer driver — paper Section 4.

Pipeline: selection pushdown → SegmentApply whole-tree variants →
per-variant memo exploration (transformation rules) → implementation
(physical alternatives, costed) → cheapest plan wins.

``OptimizerConfig`` switches individual technique families on and off;
the benchmark harness uses these switches as the paper's "systems" axis
(FULL vs decorrelation-only vs naive) and for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ... import faultinject
from ...algebra import RelationalOp
from ...analysis import PlanAnalyzer
from ...catalog.statistics import TableStats
from ...physical.plan import PhysicalOp
from .cardinality import Estimate, Estimator
from .implementation import CostedPlan, Implementer
from .memo import GroupRefLeaf, Memo
from .pushdown import push_selections
from .rules import DEFAULT_RULES, Rule
from .segment import segment_alternatives


@dataclass
class OptimizerConfig:
    """Feature switches for the optimization techniques."""

    predicate_pushdown: bool = True
    join_reorder: bool = True
    groupby_reorder: bool = True
    local_aggregates: bool = True
    segment_apply: bool = True
    index_apply: bool = True
    semijoin_rewrites: bool = True
    max_segment_variants: int = 8
    max_memo_exprs: int = 3000

    def rule_enabled(self, rule: Rule) -> bool:
        name = rule.name
        if name == "select_pushdown":
            return self.predicate_pushdown
        if name.startswith("join_"):
            return self.join_reorder
        if name in ("groupby_push_below_join", "groupby_pull_above_join",
                    "semijoin_groupby_reorder"):
            return self.groupby_reorder
        if name == "semijoin_to_join_distinct":
            return self.semijoin_rewrites
        if name.startswith("local"):
            return self.local_aggregates
        return True


class _TreeContext:
    """Implementation-time services for one memo (stats, indexes, nested
    optimization of SegmentApply inner trees)."""

    def __init__(self, optimizer: "Optimizer",
                 segment_rows: Mapping[frozenset[int], Estimate]) -> None:
        self._optimizer = optimizer
        self._segment_rows = dict(segment_rows)
        self.config = optimizer.config

    def table_rows(self, table_name: str) -> float:
        stats = self._optimizer.stats_provider(table_name)
        return float(stats.row_count) if stats is not None else 1000.0

    def zone_skip_rows(self, table_name: str, predicate,
                       scan_columns) -> float:
        """Rows a zone-map-pruned scan would skip for ``predicate``
        (literal conjuncts only — parameters are unknown at plan time).
        0.0 without a zone provider, so costing is unchanged when the
        optimizer runs detached from storage."""
        provider = self._optimizer.zone_provider
        if provider is None:
            return 0.0
        return provider(table_name, predicate, scan_columns)

    def pick_index(self, table_name: str,
                   available: set[str]) -> Optional[tuple[str, ...]]:
        """The widest index whose every column has a probe value."""
        best: Optional[tuple[str, ...]] = None
        for index_cols in self._optimizer.index_provider(table_name):
            if set(index_cols) <= available:
                if best is None or len(index_cols) > len(best):
                    best = tuple(index_cols)
        return best

    def index_selectivity_denominator(self, table_name: str,
                                      index_cols) -> float:
        stats = self._optimizer.stats_provider(table_name)
        if stats is None:
            return 10.0
        denominator = 1.0
        for name in index_cols:
            info = stats.column(name)
            denominator *= max(float(info.distinct_count), 1.0) \
                if info is not None else 10.0
        return denominator

    def make_estimator(self, group_lookup=None) -> Estimator:
        return Estimator(self._optimizer.stats_provider, group_lookup,
                         self._segment_rows,
                         corrections=self._optimizer.corrections)

    def optimize_subtree(self, rel: RelationalOp,
                         segment_rows: Mapping[frozenset[int], Estimate]
                         ) -> CostedPlan:
        merged = dict(self._segment_rows)
        merged.update(segment_rows)
        return self._optimizer._optimize_tree(rel, merged)


class Optimizer:
    """Cost-based optimizer over a statistics and index provider."""

    def __init__(self,
                 stats_provider: Callable[[str], Optional[TableStats]],
                 index_provider: Callable[[str], list[tuple[str, ...]]],
                 config: OptimizerConfig | None = None,
                 governor=None, corrections=None,
                 zone_provider=None) -> None:
        self.stats_provider = stats_provider
        self.index_provider = index_provider
        self.config = config or OptimizerConfig()
        #: Optional ``(table_name, predicate, scan_columns) -> float``
        #: returning how many stored rows the chunk zone maps prove
        #: unreachable for the predicate — feeds zone-aware scan costs.
        self.zone_provider = zone_provider
        #: Optional per-query ResourceGovernor; ticked per exploration
        #: task and consulted for the memo-group cap and the deadline.
        self.governor = governor
        #: Optional :class:`~repro.catalog.statistics.CorrectionStore`
        #: of runtime cardinality observations; threaded into every
        #: Estimator this optimizer creates so corrected estimates steer
        #: join ordering, implementation choices and segment costing.
        self.corrections = corrections

    def optimize(self, rel: RelationalOp) -> PhysicalOp:
        return self.optimize_with_cost(rel).plan

    def optimize_with_cost(self, rel: RelationalOp) -> CostedPlan:
        if self.config.predicate_pushdown:
            rel = push_selections(rel)
        # SegmentApply patterns are detected on the canonical pushed-down
        # shape; the greedy join seeding then runs on every variant (it
        # must not run first — reordering can bury the aggregated self-join
        # branch the Section 3.4 matcher looks for).
        variants = [rel]
        if self.config.segment_apply:
            variants.extend(segment_alternatives(
                rel, self.config.max_segment_variants))
        if self.config.join_reorder:
            from ...algebra import plan_signature
            from .joingraph import greedy_join_order

            seeded = []
            for variant in variants:
                reordered = greedy_join_order(
                    variant, lambda: Estimator(
                        self.stats_provider,
                        corrections=self.corrections))
                if plan_signature(reordered) != plan_signature(variant):
                    seeded.append(reordered)
            # Keep the original shapes too: the greedy seed widens the
            # reachable space but must not narrow it.
            variants = variants + seeded
        best: Optional[CostedPlan] = None
        for variant in variants:
            if self.governor is not None:
                self.governor.check_deadline()
            costed = self._optimize_tree(variant, {})
            if best is None or costed.cost < best.cost:
                best = costed
        assert best is not None
        return best

    def heuristic_plan(self, rel: RelationalOp) -> PhysicalOp:
        """A safe plan with no cost-based exploration.

        Implements the normalized tree as-is — no pushed variants, no
        transformation rules, no budgets — choosing only among the direct
        physical algorithms for each logical operator.  This is the
        graceful-degradation target when cost-based optimization fails or
        blows its budget.
        """
        return self._optimize_tree(rel, {}, explore=False).plan

    # -- single-tree optimization ----------------------------------------------

    def _optimize_tree(self, rel: RelationalOp,
                       segment_rows: Mapping[frozenset[int], Estimate],
                       explore: bool = True) -> CostedPlan:
        context = _TreeContext(self, segment_rows)

        def estimator_factory(group_lookup=None) -> Estimator:
            return Estimator(self.stats_provider, group_lookup,
                             segment_rows, corrections=self.corrections)

        memo = Memo(estimator_factory,
                    governor=self.governor if explore else None)
        root = memo.insert_tree(rel)
        if explore:
            self._explore(memo)
        implementer = Implementer(memo, context)
        return implementer.best_plan(root)

    def _explore(self, memo: Memo) -> None:
        """Work-list exploration: every expression is offered to every rule
        once (with the child bindings available at that moment); results
        enter the memo and the work list.  A global expression budget keeps
        large join orders from exploding."""
        rules = [r for r in DEFAULT_RULES if self.config.rule_enabled(r)]
        if not rules:
            return
        from collections import deque

        queue = deque()
        total = 0
        for group in memo.groups:
            for expr in group.exprs:
                queue.append((expr, group.group_id))
                total += 1
        budget = self.config.max_memo_exprs

        def enqueue(expr, group_id):
            nonlocal total
            queue.append((expr, group_id))
            total += 1

        memo.on_new_expr = enqueue
        governor = self.governor
        analyzer = PlanAnalyzer.for_rules()
        try:
            while queue and total <= budget:
                faultinject.hit("optimizer.explore")
                expr, group_id = queue.popleft()
                for rule in rules:
                    if governor is not None:
                        governor.tick_optimizer()
                    for binding in self._bindings(memo, expr,
                                                  rule.needs_depth2):
                        for result in rule.apply(binding, memo):
                            if analyzer is not None:
                                analyzer.check_rule_application(
                                    rule.name, binding, result)
                            memo.add_expr_to_group(result, group_id)
        finally:
            memo.on_new_expr = None

    def _bindings(self, memo: Memo, expr, needs_depth2: bool):
        yield expr.op
        if not needs_depth2:
            return
        op = expr.op
        for i, child in enumerate(op.children):
            if not isinstance(child, GroupRefLeaf):
                continue
            for child_expr in memo.group(child.group_id).exprs:
                children = list(op.children)
                children[i] = child_expr.op
                yield op.with_children(children)
