"""Cardinality estimation for logical operator trees.

Standard System-R-style estimation: per-table statistics from the catalog,
independence across conjuncts, containment for equijoins, distinct-count
products (capped by input size) for grouping.  Estimates drive the cost
model; absolute accuracy matters less than preserving the *ordering* of
plan alternatives, which is what the paper's cost-based choices rely on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from ...algebra import (Apply, ColumnRef, Comparison, ConstantScan,
                        Difference, Get, GroupBy, InList, IsNull, Join,
                        JoinKind, Like, Literal, LocalGroupBy, Max1row,
                        Not, Or, Project, RelationalOp, ScalarGroupBy,
                        SegmentApply, SegmentRef, Select, Sort, Top,
                        UnionAll, conjuncts)
from ...catalog.statistics import CorrectionStore, TableStats

_CID_SUFFIX = re.compile(r"#\d+")


def predicate_fingerprint(predicate) -> str:
    """A fingerprint of a predicate stable across compilations.

    Column ids are assigned fresh at every bind, so the rendered
    ``name#cid`` forms are normalized down to bare column names and the
    conjuncts sorted — the same WHERE clause fingerprints identically
    however often the statement is re-planned, which is what lets a
    runtime correction recorded during one execution be found by the
    optimizer during the next.
    """
    parts = sorted(_CID_SUFFIX.sub("", part.sql())
                   for part in conjuncts(predicate))
    return " AND ".join(parts)

DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.1
DEFAULT_NDV = 10.0


@dataclass
class ColumnEstimate:
    """Per-column statistics carried through operators."""

    ndv: float
    min_value: Any = None
    max_value: Any = None
    null_fraction: float = 0.0
    histogram: Any = None  # catalog Histogram, carried from base tables


@dataclass
class Estimate:
    """Estimated output of one operator."""

    rows: float
    columns: dict[int, ColumnEstimate] = field(default_factory=dict)
    #: Base-table provenance: set only for an unfiltered table scan
    #: (:class:`Get`) and deliberately dropped by every derivation
    #: (``scaled`` and the operator cases construct fresh Estimates), so
    #: a Select whose child estimate carries ``table`` is exactly a
    #: filter directly over that table — the shape runtime corrections
    #: are keyed on.
    table: Optional[str] = None

    def ndv(self, cid: int) -> float:
        info = self.columns.get(cid)
        if info is None:
            return DEFAULT_NDV
        return max(info.ndv, 1.0)

    def scaled(self, new_rows: float) -> "Estimate":
        """The same column stats with distinct counts capped by row count."""
        new_rows = max(new_rows, 0.0)
        columns = {
            cid: ColumnEstimate(min(info.ndv, max(new_rows, 1.0)),
                                info.min_value, info.max_value,
                                info.null_fraction)
            for cid, info in self.columns.items()}
        return Estimate(new_rows, columns)


class Estimator:
    """Estimates logical trees.

    ``stats_provider`` maps table names to :class:`TableStats`;
    ``group_lookup`` resolves memo ``GroupRef`` leaves; ``segment_rows``
    supplies per-segment row counts when estimating a SegmentApply inner
    tree.
    """

    def __init__(self,
                 stats_provider: Callable[[str], Optional[TableStats]],
                 group_lookup: Callable[[Any], Estimate] | None = None,
                 segment_rows: Mapping[frozenset[int], Estimate] | None = None,
                 corrections: CorrectionStore | None = None,
                 ) -> None:
        self._stats_provider = stats_provider
        self._group_lookup = group_lookup
        self._segment_rows = dict(segment_rows or {})
        self._corrections = corrections
        self._cache: dict[int, Estimate] = {}

    def estimate(self, rel: RelationalOp) -> Estimate:
        cached = self._cache.get(id(rel))
        if cached is None:
            cached = self._estimate(rel)
            cached.rows = max(cached.rows, 0.0)
            self._cache[id(rel)] = cached
        return cached

    # -- dispatch ---------------------------------------------------------------

    def _estimate(self, rel: RelationalOp) -> Estimate:
        if self._group_lookup is not None and _is_group_ref(rel):
            return self._group_lookup(rel)

        if isinstance(rel, Get):
            return self._estimate_get(rel)
        if isinstance(rel, ConstantScan):
            return Estimate(float(len(rel.rows)),
                            {c.cid: ColumnEstimate(float(len(rel.rows)))
                             for c in rel.columns})
        if isinstance(rel, SegmentRef):
            key = frozenset(c.cid for c in rel.columns)
            found = self._segment_rows.get(key)
            if found is not None:
                return found
            return Estimate(DEFAULT_NDV,
                            {c.cid: ColumnEstimate(DEFAULT_NDV)
                             for c in rel.columns})
        if isinstance(rel, Select):
            child = self.estimate(rel.child)
            corrected = self._corrected_rows(rel.predicate, child)
            if corrected is not None:
                return child.scaled(corrected)
            selectivity = self.predicate_selectivity(rel.predicate, child)
            return child.scaled(child.rows * selectivity)
        if isinstance(rel, Project):
            child = self.estimate(rel.child)
            columns = {}
            for column, expr in rel.items:
                if isinstance(expr, ColumnRef) and \
                        expr.column.cid in child.columns:
                    columns[column.cid] = child.columns[expr.column.cid]
                else:
                    used = [child.ndv(c.cid) for c in expr.free_columns()]
                    ndv = min(max(used, default=1.0), max(child.rows, 1.0))
                    columns[column.cid] = ColumnEstimate(ndv)
            return Estimate(child.rows, columns)
        if isinstance(rel, (Join, Apply)):
            return self._estimate_join(rel)
        if isinstance(rel, ScalarGroupBy):
            columns = {c.cid: ColumnEstimate(1.0) for c, _ in rel.aggregates}
            self.estimate(rel.child)
            return Estimate(1.0, columns)
        if isinstance(rel, (GroupBy, LocalGroupBy)):
            return self._estimate_groupby(rel)
        if isinstance(rel, Max1row):
            child = self.estimate(rel.child)
            return child.scaled(min(child.rows, 1.0))
        if isinstance(rel, Sort):
            return self.estimate(rel.child)
        if isinstance(rel, Top):
            child = self.estimate(rel.child)
            available = max(child.rows - rel.offset, 0.0)
            return child.scaled(min(available, float(rel.count)))
        if isinstance(rel, UnionAll):
            total = 0.0
            ndv_by_output = {c.cid: 0.0 for c in rel.columns}
            for source, imap in zip(rel.inputs, rel.input_maps):
                est = self.estimate(source)
                total += est.rows
                for out, src in zip(rel.columns, imap):
                    ndv_by_output[out.cid] += est.ndv(src.cid)
            columns = {cid: ColumnEstimate(max(ndv, 1.0))
                       for cid, ndv in ndv_by_output.items()}
            return Estimate(total, columns)
        if isinstance(rel, Difference):
            left = self.estimate(rel.left)
            self.estimate(rel.right)
            columns = {out.cid: left.columns.get(src.cid, ColumnEstimate(
                DEFAULT_NDV)) for out, src in zip(rel.columns, rel.left_map)}
            return Estimate(left.rows, columns)
        if isinstance(rel, SegmentApply):
            return self._estimate_segment_apply(rel)
        # Unknown operator: assume pass-through of the first child.
        if rel.children:
            return self.estimate(rel.children[0])
        return Estimate(1.0)

    def _corrected_rows(self, predicate, child: Estimate) -> float | None:
        """Runtime-feedback override for a filter directly over a table.

        When the child estimate still carries base-table provenance and
        the correction store holds a non-drifted observation for this
        (table, predicate) pair, the *observed* cardinality replaces the
        selectivity math entirely.
        """
        if self._corrections is None or child.table is None:
            return None
        found = self._corrections.lookup(child.table,
                                         predicate_fingerprint(predicate))
        if found is None:
            return None
        return float(found.actual_rows)

    # -- leaves -----------------------------------------------------------------

    def _estimate_get(self, rel: Get) -> Estimate:
        stats = self._stats_provider(rel.table_name)
        if stats is None:
            rows = 1000.0
            return Estimate(rows, {c.cid: ColumnEstimate(DEFAULT_NDV)
                                   for c in rel.columns},
                            table=rel.table_name)
        columns = {}
        for column in rel.columns:
            info = stats.column(column.name)
            if info is None:
                columns[column.cid] = ColumnEstimate(DEFAULT_NDV)
            else:
                null_fraction = (info.null_count / stats.row_count
                                 if stats.row_count else 0.0)
                columns[column.cid] = ColumnEstimate(
                    max(float(info.distinct_count), 1.0),
                    info.min_value, info.max_value, null_fraction,
                    info.histogram)
        return Estimate(float(stats.row_count), columns,
                        table=rel.table_name)

    # -- joins -------------------------------------------------------------------

    def _estimate_join(self, rel: Join | Apply) -> Estimate:
        left = self.estimate(rel.left)
        right = self.estimate(rel.right)
        combined_columns = dict(left.columns)
        combined_columns.update(right.columns)
        cross = Estimate(max(left.rows, 0.0) * max(right.rows, 0.0),
                         combined_columns)
        predicate = rel.predicate
        selectivity = (self.predicate_selectivity(predicate, cross)
                       if predicate is not None else 1.0)
        inner_rows = cross.rows * selectivity

        kind = rel.kind
        if kind is JoinKind.INNER:
            return cross.scaled(inner_rows)
        if kind is JoinKind.LEFT_OUTER:
            return cross.scaled(max(inner_rows, left.rows))
        # Semi/anti: fraction of left rows with at least one match.
        matches_per_left = (inner_rows / left.rows) if left.rows > 0 else 0.0
        semi_fraction = min(matches_per_left, 1.0)
        semi = Estimate(left.rows * semi_fraction, dict(left.columns))
        if kind is JoinKind.LEFT_SEMI:
            return semi.scaled(semi.rows)
        return Estimate(left.rows - semi.rows,
                        dict(left.columns)).scaled(left.rows - semi.rows)

    def _estimate_groupby(self, rel: GroupBy | LocalGroupBy) -> Estimate:
        child = self.estimate(rel.child)
        groups = 1.0
        for column in rel.group_columns:
            groups *= child.ndv(column.cid)
        groups = min(groups, max(child.rows, 0.0))
        columns = {c.cid: child.columns.get(c.cid, ColumnEstimate(groups))
                   for c in rel.group_columns}
        for column, _ in rel.aggregates:
            columns[column.cid] = ColumnEstimate(max(groups, 1.0))
        return Estimate(groups, columns).scaled(groups)

    def _estimate_segment_apply(self, rel: SegmentApply) -> Estimate:
        left = self.estimate(rel.left)
        segments = 1.0
        for column in rel.segment_columns:
            segments *= left.ndv(column.cid)
        segments = max(min(segments, max(left.rows, 1.0)), 1.0)
        per_segment = left.rows / segments
        seg_columns = {}
        left_cols = rel.left.output_columns()
        for left_col, inner_col in zip(left_cols, rel.inner_columns):
            info = left.columns.get(left_col.cid)
            ndv = min(info.ndv, per_segment) if info else DEFAULT_NDV
            seg_columns[inner_col.cid] = ColumnEstimate(max(ndv, 1.0))
        key = frozenset(c.cid for c in rel.inner_columns)
        nested = Estimator(self._stats_provider, self._group_lookup,
                           {**self._segment_rows,
                            key: Estimate(per_segment, seg_columns)},
                           corrections=self._corrections)
        right = nested.estimate(rel.right)
        rows = segments * right.rows
        columns = {c.cid: ColumnEstimate(left.ndv(c.cid))
                   for c in rel.segment_columns}
        columns.update(right.columns)
        return Estimate(rows, columns).scaled(rows)

    # -- predicates ---------------------------------------------------------------

    def predicate_selectivity(self, predicate, input_est: Estimate) -> float:
        selectivity = 1.0
        for part in conjuncts(predicate):
            selectivity *= self._conjunct_selectivity(part, input_est)
        return min(max(selectivity, 0.0), 1.0)

    def _conjunct_selectivity(self, part, input_est: Estimate) -> float:
        if isinstance(part, Literal):
            if part.value is True:
                return 1.0
            return 0.0
        if isinstance(part, Or):
            misses = 1.0
            for arg in part.args:
                misses *= 1.0 - self._conjunct_selectivity(arg, input_est)
            return 1.0 - misses
        if isinstance(part, Not):
            return 1.0 - self._conjunct_selectivity(part.arg, input_est)
        if isinstance(part, IsNull):
            fraction = 0.05
            if isinstance(part.arg, ColumnRef):
                info = input_est.columns.get(part.arg.column.cid)
                if info is not None:
                    fraction = info.null_fraction
            return 1.0 - fraction if part.negated else fraction
        if isinstance(part, Like):
            return DEFAULT_LIKE_SELECTIVITY
        if isinstance(part, InList):
            if isinstance(part.arg, ColumnRef):
                ndv = input_est.ndv(part.arg.column.cid)
                hit = min(len(part.values) / ndv, 1.0)
            else:
                hit = min(len(part.values) * DEFAULT_EQ_SELECTIVITY, 1.0)
            return 1.0 - hit if part.negated else hit
        if isinstance(part, Comparison):
            return self._comparison_selectivity(part, input_est)
        return DEFAULT_RANGE_SELECTIVITY

    def _comparison_selectivity(self, part: Comparison,
                                input_est: Estimate) -> float:
        left, right = part.left, part.right
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            from ...algebra.datatypes import flip_comparison
            part = Comparison(flip_comparison(part.op), right, left)
            left, right = part.left, part.right

        if part.op == "=":
            if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
                in_left = left.column.cid in input_est.columns
                in_right = right.column.cid in input_est.columns
                if in_left and in_right:
                    return 1.0 / max(input_est.ndv(left.column.cid),
                                     input_est.ndv(right.column.cid))
                if in_left:
                    return 1.0 / input_est.ndv(left.column.cid)
                if in_right:
                    return 1.0 / input_est.ndv(right.column.cid)
                return DEFAULT_EQ_SELECTIVITY
            if isinstance(left, ColumnRef) and isinstance(right, Literal):
                return 1.0 / input_est.ndv(left.column.cid)
            return DEFAULT_EQ_SELECTIVITY

        if part.op == "<>":
            return 1.0 - self._comparison_selectivity(
                Comparison("=", left, right), input_est)

        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            info = input_est.columns.get(left.column.cid)
            if info is not None and info.min_value is not None:
                return _range_fraction(part.op, right.value, info)
        return DEFAULT_RANGE_SELECTIVITY


def _range_fraction(op: str, value: Any, info: ColumnEstimate) -> float:
    import datetime

    if info.histogram is not None:
        non_null = 1.0 - info.null_fraction
        if op == "<":
            return info.histogram.fraction_below(value) * non_null
        if op == "<=":
            return info.histogram.fraction_below(value, inclusive=True) \
                * non_null
        if op == ">":
            return (1.0 - info.histogram.fraction_below(
                value, inclusive=True)) * non_null
        if op == ">=":
            return (1.0 - info.histogram.fraction_below(value)) * non_null

    def numeric(v: Any) -> float | None:
        if isinstance(v, bool):
            return float(v)
        if isinstance(v, (int, float)):
            return float(v)
        if isinstance(v, datetime.date):
            return float(v.toordinal())
        return None

    low = numeric(info.min_value)
    high = numeric(info.max_value)
    point = numeric(value)
    if low is None or high is None or point is None or high <= low:
        return DEFAULT_RANGE_SELECTIVITY
    position = min(max((point - low) / (high - low), 0.0), 1.0)
    non_null = 1.0 - info.null_fraction
    if op in ("<", "<="):
        return position * non_null
    return (1.0 - position) * non_null


def _is_group_ref(rel: RelationalOp) -> bool:
    return type(rel).__name__ == "GroupRefLeaf"
