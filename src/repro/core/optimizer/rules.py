"""Transformation rules for cost-based exploration.

Each rule receives a *materialized binding*: the root operator with its
relational children either memo group references or (for depth-2 rules)
one level of expanded child whose own children are group references.
Rules return alternative trees that the memo inserts into the same group —
generation only; the cost model chooses (paper: "it is best to generate
both the alternatives and leave the choice to the cost based optimizer").

The rule set implements the paper's Section 3 (plus classic join
reorderings needed to connect them):

* ``GroupByPushBelowJoin`` / ``GroupByPullAboveJoin`` — Section 3.1, with
  the three conditions (predicate columns grouped or FD-derivable, key of
  the preserved side grouped, aggregates confined to the pushed side);
* ``GroupByPushBelowOuterJoin`` — Section 3.2, adding the *computing
  project* that supplies ``agg(∅)`` constants for NULL-padded rows;
* ``SemiJoinGroupByReorder`` — semijoin/antijoin vs GroupBy, both ways;
* ``SemiJoinToJoinDistinct`` — semijoin as join + duplicate removal,
  exposing the GroupBy to further reordering (covers the strategies of
  Pirahesh et al. as the paper notes);
* ``LocalGlobalSplit`` / ``LocalGroupByPushBelowJoin`` — Section 3.3;
* ``JoinCommute`` / ``JoinAssociate`` — the substrate reorderings.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...algebra import (AggregateCall, AggregateFunction, Apply, Case,
                        Column, ColumnRef, ColumnSet, Comparison, GroupBy,
                        IsNull, Join, JoinKind, Literal, LocalGroupBy,
                        Project, RelationalOp, ScalarExpr, Select,
                        conjunction, conjuncts, derive_fds, derive_keys,
                        descriptor)
from ...algebra.scalar import Arithmetic
from .memo import GroupRefLeaf, Memo


class Rule:
    """Base class; ``name`` keys config switches and diagnostics."""

    name = "rule"
    needs_depth2 = False

    def apply(self, op: RelationalOp, memo: Memo) -> list[RelationalOp]:
        raise NotImplementedError


def _ids(columns) -> frozenset[int]:
    return frozenset(c.cid for c in columns)


def _restore(tree: RelationalOp, columns) -> RelationalOp:
    """Project the tree back to an exact output column list (memo groups
    require identical output columns across alternatives)."""
    if [c.cid for c in tree.output_columns()] == [c.cid for c in columns]:
        return tree
    return Project.passthrough(tree, columns)


class JoinCommute(Rule):
    name = "join_commute"

    def apply(self, op: RelationalOp, memo: Memo) -> list[RelationalOp]:
        if not (isinstance(op, Join) and op.kind is JoinKind.INNER):
            return []
        flipped = Join(JoinKind.INNER, op.right, op.left, op.predicate)
        return [_restore(flipped, op.output_columns())]


class JoinAssociate(Rule):
    """(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C), distributing conjuncts by scope."""

    name = "join_associate"
    needs_depth2 = True

    def apply(self, op: RelationalOp, memo: Memo) -> list[RelationalOp]:
        if not (isinstance(op, Join) and op.kind is JoinKind.INNER):
            return []
        inner = op.left
        if not (isinstance(inner, Join) and inner.kind is JoinKind.INNER):
            return []
        a, b, c = inner.left, inner.right, op.right
        parts: list[ScalarExpr] = []
        if inner.predicate is not None:
            parts.extend(conjuncts(inner.predicate))
        if op.predicate is not None:
            parts.extend(conjuncts(op.predicate))
        bc_ids = _ids(b.output_columns()) | _ids(c.output_columns())
        lower = [p for p in parts if p.free_columns().ids() <= bc_ids]
        upper = [p for p in parts if not p.free_columns().ids() <= bc_ids]
        new_inner = Join(JoinKind.INNER, b, c,
                         conjunction(lower) if lower else None)
        rotated = Join(JoinKind.INNER, a, new_inner,
                       conjunction(upper) if upper else None)
        return [_restore(rotated, op.output_columns())]


class GroupByPushBelowJoin(Rule):
    """Section 3.1/3.2: move a GroupBy below a join or left outer join."""

    name = "groupby_push_below_join"
    needs_depth2 = True

    def apply(self, op: RelationalOp, memo: Memo) -> list[RelationalOp]:
        if not isinstance(op, GroupBy):
            return []
        join = op.child
        if not isinstance(join, Join):
            return []
        results: list[RelationalOp] = []
        if join.kind is JoinKind.INNER:
            for side in ("right", "left"):
                pushed = _push_groupby_into(op, join, side, outer=False)
                if pushed is not None:
                    results.append(pushed)
        elif join.kind is JoinKind.LEFT_OUTER:
            pushed = _push_groupby_into(op, join, "right", outer=True)
            if pushed is not None:
                results.append(pushed)
        return results


def _push_groupby_into(gb: GroupBy, join: Join, side: str,
                       outer: bool) -> Optional[RelationalOp]:
    aggregated = join.right if side == "right" else join.left
    preserved = join.left if side == "right" else join.right
    agg_ids = _ids(aggregated.output_columns())
    preserved_ids = _ids(preserved.output_columns())
    group_ids = _ids(gb.group_columns)

    # Condition 3: aggregate expressions confined to the aggregated side.
    for _, call in gb.aggregates:
        if call.argument is None:
            return None  # count(*) counts join multiplicity; do not push
        if not call.argument.free_columns().ids() <= agg_ids:
            return None

    # Condition 2: a key of the preserved side is grouped.
    if not any(key <= group_ids for key in derive_keys(preserved)):
        return None

    # Condition 1: aggregated-side predicate columns are grouped, directly
    # or pinned per group by the join's equality conjuncts / input FDs
    # (e.g. l2_partkey ≡ p_partkey with p_partkey grouped).  Equality
    # pinning stays valid under LEFT OUTER padding: an unmatched preserved
    # row forms a singleton group.
    predicate_ids = (join.predicate.free_columns().ids()
                     if join.predicate is not None else frozenset())
    inner_pred_ids = predicate_ids & agg_ids
    extra = inner_pred_ids - group_ids
    if extra:
        fds = derive_fds(preserved).copy()
        fds.add_all(derive_fds(aggregated))
        if join.predicate is not None:
            from ...algebra.properties import _add_predicate_fds
            _add_predicate_fds(fds, join.predicate)
        if not fds.determines(group_ids, extra):
            return None

    by_id = {c.cid: c for c in aggregated.output_columns()}
    new_group_cols = [c for c in gb.group_columns if c.cid in agg_ids]
    for cid in sorted(inner_pred_ids - _ids(new_group_cols)):
        new_group_cols.append(by_id[cid])

    if outer:
        return _push_below_outerjoin(gb, join, new_group_cols)

    pushed = GroupBy(aggregated, new_group_cols, gb.aggregates)
    if side == "right":
        new_join = Join(join.kind, preserved, pushed, join.predicate)
    else:
        new_join = Join(join.kind, pushed, preserved, join.predicate)
    return _restore(new_join, gb.output_columns())


def _push_below_outerjoin(gb: GroupBy, join: Join,
                          new_group_cols: list[Column]
                          ) -> Optional[RelationalOp]:
    """Section 3.2: the pushed GroupBy's aggregates must yield their
    NULL-padded value on unmatched rows; aggregates whose ``agg(∅)`` is not
    NULL get a *computing project* that substitutes the compile-time
    constant."""
    needs_project = [
        (column, call) for column, call in gb.aggregates
        if call.descriptor.value_on_empty is not None]
    if not needs_project:
        pushed = GroupBy(join.right, new_group_cols, gb.aggregates)
        new_join = Join(JoinKind.LEFT_OUTER, join.left, pushed,
                        join.predicate)
        return _restore(new_join, gb.output_columns())

    # Detector: any pushed output column that cannot be NULL except via
    # padding.  Grouping columns may be nullable; a count output is not.
    detector_call = needs_project[0]
    inner_aggs = []
    rename: dict[int, Column] = {}
    for column, call in gb.aggregates:
        if call.descriptor.value_on_empty is None:
            inner_aggs.append((column, call))
        else:
            fresh = Column(column.name, column.dtype, nullable=False)
            rename[column.cid] = fresh
            inner_aggs.append((fresh, call))
    pushed = GroupBy(join.right, new_group_cols, inner_aggs)
    new_join = Join(JoinKind.LEFT_OUTER, join.left, pushed, join.predicate)
    detector = rename[detector_call[0].cid]
    items = []
    for column in gb.output_columns():
        if column.cid in rename:
            inner_col = rename[column.cid]
            constant = None
            for out, call in gb.aggregates:
                if out.cid == column.cid:
                    constant = call.descriptor.value_on_empty
            guarded = Case(
                [(IsNull(ColumnRef(detector)), Literal(constant))],
                ColumnRef(inner_col))
            items.append((column, guarded))
        else:
            items.append((column, ColumnRef(column)))
    return Project(new_join, items)


class GroupByPullAboveJoin(Rule):
    """Section 3.1: S ⋈p (G_{A,F} R) = G_{A∪columns(S),F} (S ⋈p R).

    Also handles the Section 3.2 outer-join direction,
    ``S LOJ_p (G_{A,F} R) = G_{A∪columns(S),F} (S LOJ_p R)``, under the
    conditions that make the NULL-padded row of an unmatched ``s``
    aggregate to exactly the padding the left side produces: every
    aggregate must be NULL-on-empty with an argument strict in ``R``'s
    columns (a padded row contributes nothing and a padded-only group
    yields NULL), and the join predicate must reject NULL on a grouping
    column of ``R`` so no matched row can share a group with the padded
    row.
    """

    name = "groupby_pull_above_join"
    needs_depth2 = True

    def apply(self, op: RelationalOp, memo: Memo) -> list[RelationalOp]:
        if not isinstance(op, Join):
            return []
        if op.kind is JoinKind.INNER:
            sides = ("right", "left")
        elif op.kind is JoinKind.LEFT_OUTER:
            sides = ("right",)
        else:
            return []
        results = []
        for side in sides:
            child = op.right if side == "right" else op.left
            other = op.left if side == "right" else op.right
            if not isinstance(child, GroupBy):
                continue
            agg_ids = _ids(c for c, _ in child.aggregates)
            predicate_ids = (op.predicate.free_columns().ids()
                             if op.predicate is not None else frozenset())
            if predicate_ids & agg_ids:
                continue  # predicate may not use aggregate results
            if not derive_keys(other):
                continue  # the joined relation must have a key
            if op.kind is JoinKind.LEFT_OUTER:
                if not self._outer_pull_sound(op, child):
                    continue
            if side == "right":
                new_join = Join(op.kind, other, child.child, op.predicate)
            else:
                new_join = Join(op.kind, child.child, other, op.predicate)
            groups = list(other.output_columns()) + list(child.group_columns)
            pulled = GroupBy(new_join, groups, child.aggregates)
            results.append(_restore(pulled, op.output_columns()))
        return results

    def _outer_pull_sound(self, op: Join, gb: GroupBy) -> bool:
        from ...algebra import null_rejected_columns, strict_columns

        inner_ids = _ids(gb.child.output_columns())
        for _, call in gb.aggregates:
            if call.descriptor.value_on_empty is not None:
                return False  # count would turn NULL padding into 0
            if call.argument is None or \
                    not (strict_columns(call.argument) & inner_ids):
                return False
        if op.predicate is None:
            return False
        rejected = null_rejected_columns(op.predicate)
        group_ids = _ids(gb.group_columns)
        return bool(rejected & group_ids)


class SemiJoinGroupByReorder(Rule):
    """Semijoin/antijoin vs GroupBy, both directions (Section 3.1 end)."""

    name = "semijoin_groupby_reorder"
    needs_depth2 = True

    def apply(self, op: RelationalOp, memo: Memo) -> list[RelationalOp]:
        # Push the semijoin below: (G R) ⋉p S  →  G (R ⋉p S)
        if isinstance(op, Join) and op.kind.left_only_output \
                and isinstance(op.left, GroupBy):
            gb = op.left
            agg_ids = _ids(c for c, _ in gb.aggregates)
            predicate_ids = (op.predicate.free_columns().ids()
                             if op.predicate is not None else frozenset())
            if not predicate_ids & agg_ids:
                inner = Join(op.kind, gb.child, op.right, op.predicate)
                return [GroupBy(inner, gb.group_columns, gb.aggregates)]
            return []
        # Pull the GroupBy above: G (R ⋉p S) → (G R) ⋉p S
        if isinstance(op, GroupBy) and isinstance(op.child, Join) \
                and op.child.kind.left_only_output:
            join = op.child
            predicate_ids = (join.predicate.free_columns().ids()
                             if join.predicate is not None else frozenset())
            left_ids = _ids(join.left.output_columns())
            group_ids = _ids(op.group_columns)
            needed = predicate_ids & left_ids
            if needed <= group_ids:
                gb = GroupBy(join.left, op.group_columns, op.aggregates)
                return [Join(join.kind, gb, join.right, join.predicate)]
        return []


class SemiJoinToJoinDistinct(Rule):
    """Semijoin = join followed by duplicate removal (needs a key)."""

    name = "semijoin_to_join_distinct"

    def apply(self, op: RelationalOp, memo: Memo) -> list[RelationalOp]:
        if not (isinstance(op, Join) and op.kind is JoinKind.LEFT_SEMI):
            return []
        if not derive_keys(op.left):
            return []
        inner = Join(JoinKind.INNER, op.left, op.right, op.predicate)
        trimmed = Project.passthrough(inner, op.left.output_columns())
        return [GroupBy(trimmed, op.left.output_columns(), [])]


class LocalGlobalSplit(Rule):
    """Section 3.3: G_{A,F} = G_{A,Fg} ∘ LG_{A,Fl} (+ finalizer project)."""

    name = "local_global_split"

    def apply(self, op: RelationalOp, memo: Memo) -> list[RelationalOp]:
        if not isinstance(op, GroupBy) or not op.aggregates:
            return []
        if any(call.distinct for _, call in op.aggregates):
            return []
        if any(call.argument is None and
               not call.descriptor.splittable
               for _, call in op.aggregates):
            return []
        # Do not re-split a global aggregate (child group already holds a
        # LocalGroupBy).
        if isinstance(op.child, GroupRefLeaf):
            child_group = memo.group(op.child.group_id)
            if any(isinstance(e.op, LocalGroupBy) for e in child_group.exprs):
                return []

        local_aggs: list[tuple[Column, AggregateCall]] = []
        global_aggs: list[tuple[Column, AggregateCall]] = []
        finalizers: dict[int, ScalarExpr] = {}
        for column, call in op.aggregates:
            split = call.descriptor.split
            role_to_global: dict[str, Column] = {}
            local_cols = []
            for part in split.local:
                local_col = Column(f"{column.name}_{part.role}_l",
                                   column.dtype if part.func not in
                                   (AggregateFunction.COUNT,
                                    AggregateFunction.COUNT_STAR)
                                   else _int_type(), nullable=True)
                argument = (call.argument
                            if part.func is not AggregateFunction.COUNT_STAR
                            else None)
                local_aggs.append(
                    (local_col, AggregateCall(part.func, argument)))
                local_cols.append(local_col)
            if split.finalizer is None:
                (g_part,) = split.global_
                global_aggs.append(
                    (column, AggregateCall(g_part.func,
                                           ColumnRef(local_cols[0]))))
            else:
                for g_part, local_col in zip(split.global_, local_cols):
                    g_col = Column(f"{column.name}_{g_part.role}_g",
                                   local_col.dtype, nullable=True)
                    global_aggs.append(
                        (g_col, AggregateCall(g_part.func,
                                              ColumnRef(local_col))))
                    role_to_global[g_part.role] = g_col
                if split.finalizer == "sum/count":
                    finalizers[column.cid] = Arithmetic(
                        "/", ColumnRef(role_to_global["sum"]),
                        ColumnRef(role_to_global["count"]))
                else:  # pragma: no cover - only sum/count exists
                    return []

        local = LocalGroupBy(op.child, op.group_columns, local_aggs)
        global_gb = GroupBy(local, op.group_columns, global_aggs)
        if not finalizers:
            return [global_gb]
        items = []
        for column in op.output_columns():
            if column.cid in finalizers:
                items.append((column, finalizers[column.cid]))
            else:
                items.append((column, ColumnRef(column)))
        return [Project(global_gb, items)]


def _int_type():
    from ...algebra import DataType
    return DataType.INTEGER


class LocalGroupByPushBelowJoin(Rule):
    """Section 3.3: LocalGroupBy moves below a join to either side —
    grouping columns can always be extended, so the only real condition is
    that the aggregates read one side only."""

    name = "localgroupby_push_below_join"
    needs_depth2 = True

    def apply(self, op: RelationalOp, memo: Memo) -> list[RelationalOp]:
        if not isinstance(op, LocalGroupBy):
            return []
        join = op.child
        if not isinstance(join, Join):
            return []
        results = []
        if join.kind is JoinKind.INNER:
            sides = ("right", "left")
        elif join.kind is JoinKind.LEFT_OUTER:
            sides = ("right",)
        else:
            return []
        for side in sides:
            pushed = self._push(op, join, side)
            if pushed is not None:
                results.append(pushed)
        return results

    def _push(self, lgb: LocalGroupBy, join: Join,
              side: str) -> Optional[RelationalOp]:
        target = join.right if side == "right" else join.left
        other = join.left if side == "right" else join.right
        target_ids = _ids(target.output_columns())
        for _, call in lgb.aggregates:
            if call.argument is None:
                return None  # count(*) over the join counts multiplicity
            arg_ids = call.argument.free_columns().ids()
            if not arg_ids <= target_ids:
                return None
            if join.kind is JoinKind.LEFT_OUTER:
                from ...algebra import strict_columns
                if not strict_columns(call.argument) & target_ids:
                    return None  # padded rows must contribute nothing
        predicate_ids = (join.predicate.free_columns().ids()
                         if join.predicate is not None else frozenset())
        by_id = {c.cid: c for c in target.output_columns()}
        group_cols = [c for c in lgb.group_columns if c.cid in target_ids]
        for cid in sorted((predicate_ids & target_ids)
                          - _ids(group_cols)):
            group_cols.append(by_id[cid])
        if not group_cols:
            return None  # degenerate: nothing to segment on
        # Below a LEFT OUTER join the same Section 3.2 hazard as
        # _push_below_outerjoin applies: a padded row carries NULL local
        # aggregates, but an aggregate with a non-NULL agg(∅) (count)
        # must deliver that constant or the global combination above the
        # join (sum of local counts) turns an all-padded group into NULL.
        rename: dict[int, Column] = {}
        pushed_aggs = lgb.aggregates
        if join.kind is JoinKind.LEFT_OUTER:
            renamed = []
            for column, call in lgb.aggregates:
                if call.descriptor.value_on_empty is None:
                    renamed.append((column, call))
                else:
                    fresh = Column(column.name, column.dtype,
                                   nullable=False)
                    rename[column.cid] = fresh
                    renamed.append((fresh, call))
            if rename:
                pushed_aggs = renamed
        pushed = LocalGroupBy(target, group_cols, pushed_aggs)
        if side == "right":
            new_join = Join(join.kind, other, pushed, join.predicate)
        else:
            new_join = Join(join.kind, pushed, other, join.predicate)
        if not rename:
            return _restore(new_join, lgb.output_columns())
        detector = next(iter(rename.values()))
        constants = {column.cid: call.descriptor.value_on_empty
                     for column, call in lgb.aggregates}
        items = []
        for column in lgb.output_columns():
            if column.cid in rename:
                guarded = Case(
                    [(IsNull(ColumnRef(detector)),
                      Literal(constants[column.cid]))],
                    ColumnRef(rename[column.cid]))
                items.append((column, guarded))
            else:
                items.append((column, ColumnRef(column)))
        return Project(new_join, items)


class SelectPushdown(Rule):
    """Move filters below projections, join inputs and GroupBy inside the
    memo.

    The normalizer's global selection pushdown runs before exploration;
    this rule re-applies the same (Section 3.1) moves to trees *produced by
    other rules* — e.g. once GroupByPushBelowJoin computes the aggregate on
    one join side, the HAVING filter can follow it below the join, which is
    what makes the three formulations of the Section 1.1 query converge to
    one plan (syntax independence).
    """

    name = "select_pushdown"
    needs_depth2 = True

    def apply(self, op: RelationalOp, memo: Memo) -> list[RelationalOp]:
        if not isinstance(op, Select):
            return []
        child = op.child

        if isinstance(child, Project):
            mapping = {c.cid: e for c, e in child.items}
            if op.predicate.free_columns().ids() <= frozenset(mapping):
                pushed = op.predicate.substitute_columns(mapping)
                return [Project(Select(child.child, pushed), child.items)]
            return []

        if isinstance(child, Join) and child.kind in (
                JoinKind.INNER, JoinKind.LEFT_SEMI, JoinKind.LEFT_ANTI,
                JoinKind.LEFT_OUTER):
            results = []
            left_ids = _ids(child.left.output_columns())
            parts = conjuncts(op.predicate)
            to_left = [p for p in parts
                       if p.free_columns().ids() <= left_ids]
            rest = [p for p in parts
                    if not p.free_columns().ids() <= left_ids]
            if to_left:
                new_left = Select(child.left, conjunction(to_left))
                pushed_join = Join(child.kind, new_left, child.right,
                                   child.predicate)
                tree = Select(pushed_join, conjunction(rest)) if rest \
                    else pushed_join
                results.append(tree)
            if child.kind is JoinKind.INNER:
                right_ids = _ids(child.right.output_columns())
                to_right = [p for p in parts
                            if p.free_columns().ids() <= right_ids]
                remainder = [p for p in parts
                             if not p.free_columns().ids() <= right_ids]
                if to_right:
                    new_right = Select(child.right, conjunction(to_right))
                    pushed_join = Join(child.kind, child.left, new_right,
                                       child.predicate)
                    tree = Select(pushed_join, conjunction(remainder)) \
                        if remainder else pushed_join
                    results.append(tree)
            return results

        if isinstance(child, (GroupBy, LocalGroupBy)):
            group_ids = _ids(child.group_columns)
            parts = conjuncts(op.predicate)
            down = [p for p in parts if p.free_columns().ids() <= group_ids]
            stay = [p for p in parts
                    if not p.free_columns().ids() <= group_ids]
            if not down:
                return []
            pushed = child.with_children(
                [Select(child.child, conjunction(down))])
            return [Select(pushed, conjunction(stay)) if stay else pushed]

        return []


DEFAULT_RULES: tuple[Rule, ...] = (
    JoinCommute(),
    JoinAssociate(),
    SelectPushdown(),
    GroupByPushBelowJoin(),
    GroupByPullAboveJoin(),
    SemiJoinGroupByReorder(),
    SemiJoinToJoinDistinct(),
    LocalGlobalSplit(),
    LocalGroupByPushBelowJoin(),
)
