"""Implementation pass: logical memo groups → costed physical plans.

Each logical expression offers one or more physical alternatives; the
cheapest per group is memoized.  Cost is a simple work metric: rows
touched, weighted per operator.  The alternatives include the paper's
"introduction of correlated execution (the simplest and most common being
index-lookup-join)": a join whose inner side is a table with a usable
index may run as a nested-loops Apply over an index seek.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ... import faultinject
from ...algebra import (Apply, ColumnRef, Comparison, ConstantScan,
                        Difference, Get, GroupBy, Join, JoinKind, Literal,
                        LocalGroupBy, Max1row, Project, RelationalOp,
                        ScalarExpr, ScalarGroupBy, SegmentApply, SegmentRef,
                        Select, Sort, Top, UnionAll, conjunction, conjuncts)
from ...errors import PlanError
from ...physical.plan import (PConstantScan, PDifference, PFilter,
                              PHashAggregate, PHashJoin, PIndexSeek,
                              PMax1row, PNestedLoopsJoin, PNLApply,
                              PProject, PScalarAggregate, PSegmentApply,
                              PSegmentRef, PSort, PStreamAggregate,
                              PTableScan, PTop, PTopN, PUnionAll,
                              PhysicalOp)
from .cardinality import Estimate
from .memo import GroupExpr, GroupRefLeaf, Memo


# Cost weights (arbitrary units ~ per-row work).
SCAN_ROW = 1.0
CPU_ROW = 0.2
HASH_BUILD_ROW = 2.0
HASH_PROBE_ROW = 1.2
OUTPUT_ROW = 0.05
SEEK_BASE = 6.0
SEEK_ROW = 1.5
APPLY_REOPEN = 2.0
SORT_ROW_FACTOR = 0.4
AGG_ROW = 1.5
STREAM_AGG_ROW = 0.6
GROUP_OUT = 0.5


@dataclass
class CostedPlan:
    cost: float
    plan: PhysicalOp


class Implementer:
    """Finds the cheapest physical plan per memo group."""

    def __init__(self, memo: Memo, context) -> None:
        self._memo = memo
        self._context = context
        self._active: set[int] = set()

    def best_plan(self, group_id: int) -> CostedPlan:
        faultinject.hit("optimizer.implement")
        group = self._memo.group(group_id)
        if group.best is not None:
            return group.best
        if group_id in self._active:
            # Cyclic derivation (push-down/pull-up pairs can make two
            # groups reference each other); a plan through the cycle is
            # never useful — prune with infinite cost.
            return CostedPlan(math.inf, PConstantScan(group.columns, []))
        self._active.add(group_id)
        try:
            best: Optional[CostedPlan] = None
            for expr in group.exprs:
                for candidate in self._alternatives(expr):
                    if best is None or candidate.cost < best.cost:
                        best = candidate
        finally:
            self._active.discard(group_id)
        if best is None:
            raise PlanError(
                f"no implementation for group {group_id} "
                f"({group.exprs[0].op.label() if group.exprs else 'empty'})")
        if math.isfinite(best.cost):
            group.best = best
        # Stamp the chosen plan root with the group's cardinality
        # estimate so runtime feedback (repro.feedback) can compare it
        # against actual row counts.  Only the group root is stamped —
        # interior enforcer nodes (e.g. the Sort under a StreamAggregate
        # alternative) have no group of their own and stay None.  A node
        # shared by several parent groups keeps its first (own-group)
        # estimate.
        if best.plan.estimated_rows is None:
            best.plan.estimated_rows = group.estimate.rows
        return best

    def _child(self, op: RelationalOp) -> CostedPlan:
        assert isinstance(op, GroupRefLeaf), "expr children must be grouped"
        return self.best_plan(op.group_id)

    def _rows(self, op: RelationalOp) -> float:
        if isinstance(op, GroupRefLeaf):
            return self._memo.group(op.group_id).estimate.rows
        raise AssertionError("row estimate requested for non-group child")

    def _group_rows(self, group_id: int) -> float:
        return self._memo.group(group_id).estimate.rows

    # -- alternative generation ---------------------------------------------------

    def _alternatives(self, expr: GroupExpr) -> Iterable[CostedPlan]:
        op = expr.op
        if isinstance(op, Get):
            yield self._implement_get(op)
        elif isinstance(op, ConstantScan):
            plan = PConstantScan(op.columns, op.rows)
            yield CostedPlan(len(op.rows) * CPU_ROW + CPU_ROW, plan)
        elif isinstance(op, SegmentRef):
            yield CostedPlan(CPU_ROW, PSegmentRef(op.columns))
        elif isinstance(op, Select):
            yield from self._implement_select(op)
        elif isinstance(op, Project):
            child = self._child(op.child)
            rows = self._rows(op.child)
            plan = PProject(child.plan, op.items)
            yield CostedPlan(child.cost + rows * CPU_ROW, plan)
        elif isinstance(op, (Join, Apply)):
            yield from self._implement_join(op)
        elif isinstance(op, ScalarGroupBy):
            child = self._child(op.child)
            rows = self._rows(op.child)
            plan = PScalarAggregate(child.plan, op.aggregates)
            yield CostedPlan(child.cost + rows * AGG_ROW, plan)
        elif isinstance(op, (GroupBy, LocalGroupBy)):
            child = self._child(op.child)
            rows = self._rows(op.child)
            groups = min(self._estimate_groups(op), max(rows, 1.0))
            plan = PHashAggregate(child.plan, op.group_columns,
                                  op.aggregates,
                                  is_local=isinstance(op, LocalGroupBy))
            yield CostedPlan(
                child.cost + rows * AGG_ROW + groups * GROUP_OUT, plan)
            # Sort-based alternative: explicit sort + streaming aggregation
            # (the classic sorted-aggregation strategy; wins when groups
            # are few relative to rows and hashing is disadvantaged).
            if op.group_columns and not isinstance(op, LocalGroupBy):
                sort_keys = [(ColumnRef(c), True) for c in op.group_columns]
                sorted_child = PSort(child.plan, sort_keys)
                stream = PStreamAggregate(sorted_child, op.group_columns,
                                          op.aggregates)
                sort_cost = max(rows, 1.0) * math.log2(rows + 2) \
                    * SORT_ROW_FACTOR
                yield CostedPlan(
                    child.cost + sort_cost + rows * STREAM_AGG_ROW
                    + groups * GROUP_OUT, stream)
        elif isinstance(op, Sort):
            child = self._child(op.child)
            rows = max(self._rows(op.child), 1.0)
            plan = PSort(child.plan, op.keys)
            yield CostedPlan(
                child.cost + rows * math.log2(rows + 2) * SORT_ROW_FACTOR,
                plan)
        elif isinstance(op, Top):
            child = self._child(op.child)
            yield CostedPlan(
                child.cost + (op.count + op.offset) * CPU_ROW,
                PTop(child.plan, op.count, op.offset))
            # Top-N: fuse with a Sort below into a bounded-heap operator,
            # replacing the full O(n log n) sort by O(n log k).
            if isinstance(op.child, GroupRefLeaf):
                for expr in self._memo.group(op.child.group_id).exprs:
                    if not isinstance(expr.op, Sort):
                        continue
                    sort_op = expr.op
                    inner = self._child(sort_op.child)
                    rows = self._rows(sort_op.child)
                    keep = op.count + op.offset
                    plan = PTopN(inner.plan, sort_op.keys, op.count,
                                 op.offset)
                    cost = (inner.cost
                            + max(rows, 1.0) * math.log2(keep + 2)
                            * SORT_ROW_FACTOR
                            + keep * CPU_ROW)
                    yield CostedPlan(cost, plan)
        elif isinstance(op, Max1row):
            child = self._child(op.child)
            yield CostedPlan(child.cost + CPU_ROW, PMax1row(child.plan))
        elif isinstance(op, UnionAll):
            children = [self._child(c) for c in op.children]
            rows = sum(self._rows(c) for c in op.children)
            plan = PUnionAll([c.plan for c in children], op.columns,
                             op.input_maps)
            yield CostedPlan(sum(c.cost for c in children)
                             + rows * CPU_ROW, plan)
        elif isinstance(op, Difference):
            left = self._child(op.left)
            right = self._child(op.right)
            rows = self._rows(op.left) + self._rows(op.right)
            plan = PDifference(left.plan, right.plan, op.columns,
                               op.left_map, op.right_map)
            yield CostedPlan(left.cost + right.cost
                             + rows * HASH_BUILD_ROW, plan)
        elif isinstance(op, SegmentApply):
            yield self._implement_segment_apply(op)
        else:
            raise PlanError(f"cannot implement {type(op).__name__}")

    # -- scans and filters ----------------------------------------------------------

    def _implement_get(self, op: Get) -> CostedPlan:
        rows = self._context.table_rows(op.table_name)
        return CostedPlan(rows * SCAN_ROW,
                          PTableScan(op.table_name, op.columns))

    def _implement_select(self, op: Select) -> Iterable[CostedPlan]:
        child = self._child(op.child)
        rows = self._rows(op.child)
        cost = child.cost + rows * CPU_ROW
        if isinstance(child.plan, PTableScan):
            # A filter directly over a stored scan executes as a fused
            # zone-skipping scan: chunks the zone maps prove empty for
            # the predicate are neither decoded nor filtered.  Discount
            # both the scan touch and the filter evaluation for them.
            skipped = self._context.zone_skip_rows(
                child.plan.table_name, op.predicate, child.plan.columns)
            if skipped > 0.0:
                cost = max(child.cost - skipped * SCAN_ROW, 0.0) \
                    + max(rows - skipped, 0.0) * CPU_ROW
        yield CostedPlan(cost, PFilter(child.plan, op.predicate))
        # Constant-equality index seek directly on a stored table.
        for get_op, extra in self._access_paths(op.child):
            seek = self._constant_seek(get_op, op.predicate, extra)
            if seek is not None:
                yield seek

    def _access_paths(self, ref: RelationalOp):
        """(Get, residual) pairs reachable in the referenced group."""
        if not isinstance(ref, GroupRefLeaf):
            return
        group = self._memo.group(ref.group_id)
        for expr in group.exprs:
            if isinstance(expr.op, Get):
                yield expr.op, None
            elif isinstance(expr.op, Select) and \
                    isinstance(expr.op.child, GroupRefLeaf):
                inner = self._memo.group(expr.op.child.group_id)
                for inner_expr in inner.exprs:
                    if isinstance(inner_expr.op, Get):
                        yield inner_expr.op, expr.op.predicate

    def _constant_seek(self, get_op: Get, predicate: ScalarExpr,
                       extra: Optional[ScalarExpr]) -> Optional[CostedPlan]:
        get_ids = {c.cid: c for c in get_op.columns}
        allow_parameters = self._context.config.index_apply
        const_eq: dict[int, ScalarExpr] = {}
        residual: list[ScalarExpr] = []
        for part in conjuncts(predicate):
            bound = _constant_equality(part, get_ids)
            if bound is not None and (allow_parameters
                                      or isinstance(bound[1], Literal)):
                const_eq[bound[0].cid] = bound[1]
            else:
                residual.append(part)
        if extra is not None:
            residual.extend(conjuncts(extra))
        if not const_eq:
            return None
        index_cols = self._context.pick_index(
            get_op.table_name, {get_ids[cid].name for cid in const_eq})
        if index_cols is None:
            return None
        by_name = {c.name: c for c in get_op.columns}
        key_columns = [by_name[n] for n in index_cols]
        key_exprs = [const_eq[c.cid] for c in key_columns]
        used = {c.cid for c in key_columns}
        for cid, value in const_eq.items():
            if cid not in used:
                residual.append(Comparison("=", ColumnRef(get_ids[cid]),
                                           value))
        plan = PIndexSeek(get_op.table_name, get_op.columns, key_columns,
                          key_exprs,
                          conjunction(residual) if residual else None)
        matches = max(self._context.table_rows(get_op.table_name)
                      / max(self._context.index_selectivity_denominator(
                          get_op.table_name, index_cols), 1.0), 1.0)
        return CostedPlan(SEEK_BASE + matches * SEEK_ROW, plan)

    # -- joins --------------------------------------------------------------------

    def _implement_join(self, op: Join | Apply) -> Iterable[CostedPlan]:
        left = self._child(op.left)
        right = self._child(op.right)
        left_rows = self._rows(op.left)
        right_rows = self._rows(op.right)
        out_rows = self._output_rows(op)
        predicate = op.predicate
        correlated = isinstance(op, Apply) and bool(
            op.right.outer_references().ids()
            & frozenset(c.cid for c in op.left.output_columns()))

        if isinstance(op, Apply):
            # Correlated execution: nested loops with parameter binding.
            yield CostedPlan(
                left.cost + left_rows * (right.cost + APPLY_REOPEN)
                + out_rows * OUTPUT_ROW,
                PNLApply(op.kind, left.plan, right.plan, predicate,
                         op.guard))
            if op.guard is not None:
                return  # conditional execution admits no other form
            if not correlated:
                yield from self._uncorrelated_join_plans(
                    op, left, right, left_rows, right_rows, out_rows)
            yield from self._index_apply_plans(op, left, left_rows, out_rows)
            return

        yield from self._uncorrelated_join_plans(
            op, left, right, left_rows, right_rows, out_rows)
        yield from self._index_apply_plans(op, left, left_rows, out_rows)

    def _uncorrelated_join_plans(self, op, left, right, left_rows,
                                 right_rows, out_rows):
        predicate = op.predicate
        left_ids = frozenset(c.cid for c in op.left.output_columns())
        right_ids = frozenset(c.cid for c in op.right.output_columns())
        equi, residual = _split_equi(predicate, left_ids, right_ids)
        if equi:
            left_keys = [ColumnRef(l) for l, _ in equi]
            right_keys = [ColumnRef(r) for _, r in equi]
            plan = PHashJoin(op.kind, left.plan, right.plan, left_keys,
                             right_keys,
                             conjunction(residual) if residual else None)
            cost = (left.cost + right.cost
                    + right_rows * HASH_BUILD_ROW
                    + left_rows * HASH_PROBE_ROW
                    + out_rows * OUTPUT_ROW)
            yield CostedPlan(cost, plan)
        plan = PNestedLoopsJoin(op.kind, left.plan, right.plan, predicate)
        cost = (left.cost + right.cost
                + left_rows * max(right_rows, 1.0) * CPU_ROW
                + out_rows * OUTPUT_ROW)
        yield CostedPlan(cost, plan)

    def _index_apply_plans(self, op, left, left_rows, out_rows):
        """Index-lookup join: re-introduced correlated execution."""
        if not self._context.config.index_apply:
            return
        predicate = op.predicate
        if predicate is None:
            return
        left_ids = {c.cid: c for c in op.left.output_columns()}
        for get_op, extra in self._access_paths(op.right):
            get_ids = {c.cid: c for c in get_op.columns}
            pairs: dict[int, ScalarExpr] = {}
            residual: list[ScalarExpr] = []
            for part in conjuncts(predicate):
                pair = _cross_equality(part, left_ids, get_ids)
                if pair is not None and pair[1].cid not in pairs:
                    pairs[pair[1].cid] = ColumnRef(pair[0])
                else:
                    residual.append(part)
            if not pairs:
                continue
            names = {get_ids[cid].name for cid in pairs}
            index_cols = self._context.pick_index(get_op.table_name, names)
            if index_cols is None:
                continue
            by_name = {c.name: c for c in get_op.columns}
            key_columns = [by_name[n] for n in index_cols]
            key_exprs = [pairs[c.cid] for c in key_columns]
            used = {c.cid for c in key_columns}
            for cid, expr in pairs.items():
                if cid not in used:
                    residual.append(
                        Comparison("=", expr, ColumnRef(get_ids[cid])))
            seek_residual = list(conjuncts(extra)) if extra is not None else []
            seek = PIndexSeek(get_op.table_name, get_op.columns,
                              key_columns, key_exprs,
                              conjunction(seek_residual)
                              if seek_residual else None)
            matches = max(self._context.table_rows(get_op.table_name)
                          / max(self._context.index_selectivity_denominator(
                              get_op.table_name, index_cols), 1.0), 1.0)
            plan = PNLApply(op.kind, left.plan, seek,
                            conjunction(residual) if residual else None)
            cost = (left.cost
                    + left_rows * (SEEK_BASE + matches * SEEK_ROW)
                    + out_rows * OUTPUT_ROW)
            yield CostedPlan(cost, plan)

    def _output_rows(self, op) -> float:
        estimator = self._context.make_estimator(
            group_lookup=lambda ref: self._memo.group(
                ref.group_id).estimate)
        return estimator.estimate(op).rows

    def _estimate_groups(self, op: GroupBy | LocalGroupBy) -> float:
        estimator = self._context.make_estimator(
            group_lookup=lambda ref: self._memo.group(
                ref.group_id).estimate)
        return estimator.estimate(op).rows

    # -- segmented execution ---------------------------------------------------------

    def _implement_segment_apply(self, op: SegmentApply) -> CostedPlan:
        left = self._child(op.left)
        left_est = self._memo.group(op.left.group_id).estimate
        segments = 1.0
        for column in op.segment_columns:
            segments *= left_est.ndv(column.cid)
        segments = max(min(segments, max(left_est.rows, 1.0)), 1.0)
        per_segment_rows = left_est.rows / segments

        from .cardinality import ColumnEstimate, Estimate as Est
        seg_columns = {}
        left_cols = self._memo.group(op.left.group_id).columns
        for left_col, inner_col in zip(left_cols, op.inner_columns):
            info = left_est.columns.get(left_col.cid)
            ndv = min(info.ndv, per_segment_rows) if info else per_segment_rows
            seg_columns[inner_col.cid] = ColumnEstimate(max(ndv, 1.0))
        segment_estimate = Est(per_segment_rows, seg_columns)
        key = frozenset(c.cid for c in op.inner_columns)

        inner = self._context.optimize_subtree(
            op.right, {key: segment_estimate})
        plan = PSegmentApply(left.plan, inner.plan, op.segment_columns,
                             op.inner_columns)
        cost = (left.cost + left_est.rows * HASH_BUILD_ROW
                + segments * (inner.cost + APPLY_REOPEN))
        return CostedPlan(cost, plan)


# ---------------------------------------------------------------------------
# predicate decomposition helpers
# ---------------------------------------------------------------------------

def _split_equi(predicate: Optional[ScalarExpr],
                left_ids: frozenset[int], right_ids: frozenset[int]):
    """Equality column pairs (left, right) plus residual conjuncts."""
    if predicate is None:
        return [], []
    equi = []
    residual = []
    for part in conjuncts(predicate):
        if (isinstance(part, Comparison) and part.op == "="
                and isinstance(part.left, ColumnRef)
                and isinstance(part.right, ColumnRef)):
            a, b = part.left.column, part.right.column
            if a.cid in left_ids and b.cid in right_ids:
                equi.append((a, b))
                continue
            if b.cid in left_ids and a.cid in right_ids:
                equi.append((b, a))
                continue
        residual.append(part)
    return equi, residual


def _constant_equality(part: ScalarExpr, get_ids: dict):
    """Match ``col = probe`` where col belongs to the Get and the probe is
    a constant or an outer parameter (correlated index lookup — the
    paper's per-row "appropriate indices" execution)."""
    from ...algebra import Literal, Parameter

    if not (isinstance(part, Comparison) and part.op == "="):
        return None

    def probe(expr: ScalarExpr) -> bool:
        if isinstance(expr, (Literal, Parameter)):
            # Literals are constants; query parameters are constant per
            # execution (bound before the plan runs), so both can drive
            # an index seek.
            return True
        # A column not produced by the scanned table is a correlation
        # parameter bound by an enclosing NLApply.
        return (isinstance(expr, ColumnRef)
                and expr.column.cid not in get_ids)

    left, right = part.left, part.right
    if isinstance(left, ColumnRef) and left.column.cid in get_ids \
            and probe(right):
        return left.column, right
    if isinstance(right, ColumnRef) and right.column.cid in get_ids \
            and probe(left):
        return right.column, left
    return None


def _cross_equality(part: ScalarExpr, left_ids: dict, get_ids: dict):
    """Match ``left_col = get_col`` in either order."""
    if not (isinstance(part, Comparison) and part.op == "="):
        return None
    left, right = part.left, part.right
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        if left.column.cid in left_ids and right.column.cid in get_ids:
            return left.column, right.column
        if right.column.cid in left_ids and left.column.cid in get_ids:
            return right.column, left.column
    return None
