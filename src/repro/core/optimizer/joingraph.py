"""Greedy initial join ordering.

Exhaustive join enumeration inside the memo is budget-bounded; on wide
join graphs (TPC-H Q8 joins eight tables) the budget can truncate
exploration before a good order is found.  This pre-phase rewrites each
maximal cluster of inner joins into a greedy left-deep order — smallest
estimated intermediate result first — so the memo starts from a sane plan
and its exploration only needs to improve locally.  This mirrors standard
practice (greedy/GOO seeding ahead of transformation-based search).
"""

from __future__ import annotations

from typing import Callable, Optional

from ...algebra import (Join, JoinKind, Project, RelationalOp, ScalarExpr,
                        conjunction, conjuncts, transform_bottom_up)
from .cardinality import Estimator


def greedy_join_order(rel: RelationalOp,
                      estimator_factory: Callable[[], Estimator]
                      ) -> RelationalOp:
    """Reorder inner-join clusters greedily by estimated cardinality."""

    def walk(node: RelationalOp) -> RelationalOp:
        if isinstance(node, Join) and node.kind is JoinKind.INNER:
            relations, predicates = _collect_cluster(node)
            if len(relations) > 2:
                relations = [walk(r) for r in relations]
                ordered = _order_greedily(relations, predicates,
                                          estimator_factory())
                return Project.passthrough(ordered, node.output_columns())
            # Two-way joins keep their structure (nothing to reorder).
        children = [walk(c) for c in node.children]
        if any(n is not o for n, o in zip(children, node.children)):
            return node.with_children(children)
        return node

    return walk(rel)


def _collect_cluster(root: Join) -> tuple[list[RelationalOp],
                                          list[ScalarExpr]]:
    """Relations and conjuncts of a maximal inner-join subtree."""
    relations: list[RelationalOp] = []
    predicates: list[ScalarExpr] = []

    def visit(node: RelationalOp) -> None:
        if isinstance(node, Join) and node.kind is JoinKind.INNER:
            if node.predicate is not None:
                predicates.extend(conjuncts(node.predicate))
            visit(node.left)
            visit(node.right)
        else:
            relations.append(node)

    visit(root)
    return relations, predicates


def _order_greedily(relations: list[RelationalOp],
                    predicates: list[ScalarExpr],
                    estimator: Estimator) -> RelationalOp:
    remaining = list(relations)
    pending = list(predicates)

    def applicable(tree_cols: frozenset[int], extra: RelationalOp
                   ) -> list[ScalarExpr]:
        cols = tree_cols | frozenset(
            c.cid for c in extra.output_columns())
        return [p for p in pending if p.free_columns().ids() <= cols]

    # Seed: the smallest relation.
    remaining.sort(key=lambda r: estimator.estimate(r).rows)
    current = remaining.pop(0)

    while remaining:
        current_cols = frozenset(c.cid for c in current.output_columns())
        best_rank = None
        best_choice = None
        for index, candidate in enumerate(remaining):
            usable = applicable(current_cols, candidate)
            joined = Join(JoinKind.INNER, current, candidate,
                          conjunction(usable) if usable else None)
            rows = estimator.estimate(joined).rows
            # Prefer connected joins; among them, the smallest result.
            rank = (not usable, rows, index)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_choice = (index, joined, usable)
        assert best_choice is not None
        index, joined, usable = best_choice
        remaining.pop(index)
        for predicate in usable:
            pending.remove(predicate)
        current = joined

    if pending:
        # Conjuncts that never became applicable (shouldn't happen in
        # well-formed clusters) stay as a filter on top.
        from ...algebra import Select

        current = Select(current, conjunction(pending))
    return current
