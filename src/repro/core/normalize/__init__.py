"""Normalization: subquery flattening (decorrelation) per paper Section 2."""

from .apply_removal import ApplyRemovalConfig, is_not_true, remove_applies
from .classify import (SubqueryClass, SubqueryReport,
                       classify_residual_applies, classify_query)
from .mutual_recursion import remove_subqueries
from .normalizer import (MAX_PLAN_DEPTH, NormalizeConfig, check_plan_depth,
                         normalize, tree_depth)
from .oj_simplify import simplify_outerjoins
from .simplify import simplify

__all__ = ["ApplyRemovalConfig", "MAX_PLAN_DEPTH", "NormalizeConfig",
           "SubqueryClass", "SubqueryReport", "check_plan_depth",
           "classify_query", "classify_residual_applies", "is_not_true",
           "normalize", "remove_applies", "remove_subqueries", "simplify",
           "simplify_outerjoins", "tree_depth"]
