"""Outerjoin simplification — paper Section 1.2 "Simplify outerjoin".

A left outer join becomes an inner join when a predicate above rejects NULL
on columns of its NULL-padded (right) side [Galindo-Legaria & Rosenthal,
TODS 1997].  The paper's addition — implemented here — is *derivation of
null-rejection in GroupBy operators*: a HAVING predicate rejecting NULL on
an aggregate result ``X = agg(arg)`` where ``agg`` yields NULL on empty
input implies rejection on ``arg``'s strict columns below the GroupBy,
letting ``σ_{1000000<X} G_{...,X=sum(p)} (C LOJ O)`` simplify to an inner
join.

Soundness machinery: rejection derived through a GroupBy is tagged with
*guards* — one column set per aggregate of that GroupBy.  Converting an
outerjoin below is only allowed when every guard intersects the padded
side, i.e. every aggregate ignores NULL-padded rows (this is what makes a
``count(*)`` alongside the filtered aggregate block the rewrite: padded
rows do count there).
"""

from __future__ import annotations

from ...algebra import (Apply, ColumnRef, Difference, GroupBy, Join,
                        JoinKind, LocalGroupBy, Max1row, Project,
                        RelationalOp, ScalarGroupBy, Select, SegmentApply,
                        Sort, Top, UnionAll, null_rejected_columns,
                        strict_columns)

_Guards = tuple[frozenset[int], ...]
_EMPTY: frozenset[int] = frozenset()


def simplify_outerjoins(rel: RelationalOp) -> RelationalOp:
    """Convert LOJ joins/applies to inner where null-rejection allows."""
    return _walk(rel, _EMPTY, ())


def _walk(rel: RelationalOp, rejected: frozenset[int],
          guards: _Guards) -> RelationalOp:
    if isinstance(rel, Select):
        child_rejected = rejected | null_rejected_columns(rel.predicate)
        return Select(_walk(rel.child, child_rejected, guards), rel.predicate)

    if isinstance(rel, Project):
        mapped = set()
        for column, expr in rel.items:
            if column.cid in rejected:
                if isinstance(expr, ColumnRef):
                    mapped.add(expr.column.cid)
                else:
                    mapped |= strict_columns(expr)
        new_guards = tuple(_remap_through_project(g, rel) for g in guards)
        return Project(_walk(rel.child, frozenset(mapped), new_guards),
                       rel.items)

    if isinstance(rel, (GroupBy, LocalGroupBy)):
        return _walk_groupby(rel, rejected, guards)

    if isinstance(rel, ScalarGroupBy):
        # Scalar aggregation always emits a row; rejection does not
        # propagate (an empty child still produces output).
        return ScalarGroupBy(_walk(rel.child, _EMPTY, ()), rel.aggregates)

    if isinstance(rel, (Join, Apply)):
        return _walk_join(rel, rejected, guards)

    if isinstance(rel, Sort):
        return Sort(_walk(rel.child, rejected, guards), rel.keys)

    if isinstance(rel, (Top, Max1row)):
        # Dropping rows earlier would change which rows pass Top, and
        # Max1row's error semantics; stop propagation.
        (child,) = rel.children
        return rel.with_children([_walk(child, _EMPTY, ())])

    if isinstance(rel, UnionAll):
        new_inputs = []
        for source, imap in zip(rel.inputs, rel.input_maps):
            translated = frozenset(
                src.cid for out, src in zip(rel.columns, imap)
                if out.cid in rejected)
            new_inputs.append(_walk(source, translated, ()))
        return UnionAll(new_inputs, rel.columns, rel.input_maps)

    if isinstance(rel, Difference):
        translated = frozenset(
            src.cid for out, src in zip(rel.columns, rel.left_map)
            if out.cid in rejected)
        left = _walk(rel.left, translated, ())
        right = _walk(rel.right, _EMPTY, ())  # shrinking right grows output
        return Difference(left, right, rel.columns, rel.left_map,
                          rel.right_map)

    if isinstance(rel, SegmentApply):
        left = _walk(rel.left, _EMPTY, ())
        right = _walk(rel.right, _EMPTY, ())
        return SegmentApply(left, right, rel.segment_columns,
                            rel.inner_columns)

    children = [_walk(c, _EMPTY, ()) for c in rel.children]
    if any(n is not o for n, o in zip(children, rel.children)):
        return rel.with_children(children)
    return rel


def _remap_through_project(guard: frozenset[int],
                           project: Project) -> frozenset[int]:
    remapped = set(guard)
    for column, expr in project.items:
        if column.cid in remapped and not (
                isinstance(expr, ColumnRef) and expr.column == column):
            remapped.discard(column.cid)
            if isinstance(expr, ColumnRef):
                remapped.add(expr.column.cid)
            else:
                remapped |= strict_columns(expr)
    return frozenset(remapped)


def _walk_groupby(rel: GroupBy | LocalGroupBy, rejected: frozenset[int],
                  guards: _Guards) -> RelationalOp:
    child_rejected: set[int] = set()
    for group_column in rel.group_columns:
        if group_column.cid in rejected:
            child_rejected.add(group_column.cid)
    derived = False
    for column, call in rel.aggregates:
        if column.cid not in rejected:
            continue
        if call.descriptor.value_on_empty is not None:
            continue  # count: 0 on empty, never NULL-rejecting downward
        if call.argument is None:
            continue
        strict = strict_columns(call.argument)
        if strict:
            child_rejected |= strict
            derived = True

    if not child_rejected:
        return rel.with_children([_walk(rel.child, _EMPTY, ())])

    # Any rejection flowing through a GroupBy must be guarded by every
    # aggregate of this GroupBy ignoring NULL-padded rows.
    new_guards = list(guards)
    for column, call in rel.aggregates:
        if call.argument is None:  # count(*): counts padded rows — guard ∅
            new_guards.append(frozenset())
        else:
            new_guards.append(strict_columns(call.argument))
    child = _walk(rel.child, frozenset(child_rejected), tuple(new_guards))
    return rel.with_children([child])


def _walk_join(rel: Join | Apply, rejected: frozenset[int],
               guards: _Guards) -> RelationalOp:
    kind = rel.kind
    left, right = rel.children
    left_ids = frozenset(c.cid for c in left.output_columns())
    right_ids = frozenset(c.cid for c in right.output_columns())
    predicate = rel.predicate
    predicate_rejects = (null_rejected_columns(predicate)
                         if predicate is not None else _EMPTY)

    guarded = isinstance(rel, Apply) and rel.guard is not None
    if kind is JoinKind.LEFT_OUTER and not guarded:
        if (rejected & right_ids) and all(g & right_ids for g in guards):
            kind = JoinKind.INNER  # the simplification

    if kind is JoinKind.INNER:
        combined = rejected | predicate_rejects
        new_left = _walk(left, combined & left_ids, guards)
        new_right = _walk(right, combined & right_ids, guards)
    elif kind is JoinKind.LEFT_OUTER:
        new_left = _walk(left, rejected & left_ids, guards)
        right_rejected = predicate_rejects & right_ids
        if not guards:
            right_rejected |= rejected & right_ids
        new_right = _walk(right, right_rejected, guards)
    elif kind is JoinKind.LEFT_SEMI:
        new_left = _walk(left, (rejected | predicate_rejects) & left_ids,
                         guards)
        new_right = _walk(right, predicate_rejects & right_ids, guards)
    else:  # LEFT_ANTI: a never-matching left row is *kept*
        new_left = _walk(left, rejected & left_ids, guards)
        new_right = _walk(right, predicate_rejects & right_ids, guards)

    if isinstance(rel, Apply):
        return Apply(kind, new_left, new_right, predicate, rel.guard)
    return Join(kind, new_left, new_right, predicate)
