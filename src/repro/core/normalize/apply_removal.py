"""Removal of Apply — paper Section 2.3 (identities (1)–(9) of Figure 4).

The process "consists of pushing down Apply in the operator tree, towards
the leaves, until the right child of Apply is no longer parameterized off
the left child", at which point the Apply becomes an ordinary join variant
(identities (1)/(2)).

Implementation notes:

* Parameterized Selects are folded into the Apply's predicate — the
  composition of identities (2)/(3): once the right side is uncorrelated,
  ``Apply[kind](R, E, p)`` is exactly ``Join[kind](R, E, p)``.
* Identity (9) (scalar aggregate) performs the paper's ``F → F'``
  substitution — aggregates for which ``agg(∅) ≠ agg({NULL})``, i.e.
  ``count(*)``, are re-expressed over a manufactured non-nullable *probe*
  column, avoiding the classic count bug.
* Identities (5)/(6)/(7) introduce *common subexpressions* (copies of
  ``R``); they define subquery Class 2 and are gated behind
  ``class2_rewrites`` — the paper's implementation likewise does not apply
  them during normalization.
* Class 3 constructs (``Max1row``) and parameterized Top stop the pushdown;
  the residual Apply simply remains in the tree, and the executor runs it
  as correlated execution, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...algebra import (AggregateCall, AggregateFunction, Apply, Case,
                        Column, ColumnRef, ColumnSet, ConstantScan,
                        DataType, Difference, GroupBy, IsNull, Join,
                        JoinKind, Literal, LocalGroupBy, Max1row, Project,
                        RelationalOp, ScalarExpr, ScalarGroupBy, Select,
                        Sort, Top, UnionAll, clone_with_fresh_columns,
                        conjunction, has_key, max_one_row,
                        strict_columns, substitute_outer_columns,
                        transform_bottom_up)


@dataclass
class ApplyRemovalConfig:
    """Knobs for the decorrelation pass."""

    class2_rewrites: bool = False  # identities (5)/(6)/(7)
    max_passes: int = 64


def remove_applies(rel: RelationalOp,
                   config: ApplyRemovalConfig | None = None) -> RelationalOp:
    """Push down / eliminate Apply operators until fixpoint."""
    config = config or ApplyRemovalConfig()
    for _ in range(config.max_passes):
        changed = False

        def step(node: RelationalOp) -> RelationalOp:
            nonlocal changed
            if isinstance(node, Apply):
                rewritten = _step_apply(node, config)
                if rewritten is not None:
                    changed = True
                    return rewritten
            return node

        rel = transform_bottom_up(rel, step)
        if not changed:
            return rel
    return rel


def is_not_true(predicate: ScalarExpr) -> ScalarExpr:
    """A predicate that is TRUE exactly when ``predicate`` is FALSE or
    UNKNOWN (used when rewriting antijoin semantics over single-row
    inputs)."""
    return Case([(predicate, Literal(False))], Literal(True))


def _step_apply(apply: Apply,
                config: ApplyRemovalConfig) -> RelationalOp | None:
    """One pushdown step; ``None`` when no rule fires."""
    if apply.guard is not None:
        # Conditional scalar execution (Section 2.4): the right side must
        # not run for unguarded rows — eager flattening is incorrect (it
        # could raise a run-time error the query semantics forbid).  The
        # Apply stays correlated.
        return None

    left, right = apply.left, apply.right
    left_ids = {c.cid for c in left.output_columns()}
    correlated = right.outer_references().ids() & frozenset(left_ids)

    if not correlated:
        # Identities (1)/(2): the right side no longer parameterizes on the
        # left — the Apply *is* a join.
        return Join(apply.kind, left, right, apply.predicate)

    if isinstance(right, Select):
        # Fold the parameterized select into the Apply predicate
        # (composition of identities (2)/(3)).
        merged = conjunction(
            p for p in (apply.predicate, right.predicate) if p is not None)
        return Apply(apply.kind, left, right.child, merged)

    if isinstance(right, Project):
        return _push_through_project(apply, right)

    if isinstance(right, ScalarGroupBy):
        return _identity9(apply, right)

    if isinstance(right, (GroupBy, LocalGroupBy)):
        return _identity8(apply, right)

    if isinstance(right, Join):
        return _push_into_join(apply, right, config)

    if isinstance(right, UnionAll):
        if config.class2_rewrites and apply.kind is JoinKind.INNER \
                and apply.predicate is None:
            return _identity5(apply, right)
        return None

    if isinstance(right, Difference):
        if config.class2_rewrites and apply.kind is JoinKind.INNER \
                and apply.predicate is None:
            return _identity6(apply, right)
        return None

    if isinstance(right, Max1row):
        if max_one_row(right.child):
            return Apply(apply.kind, left, right.child, apply.predicate)
        return None  # Class 3: keep correlated execution.

    if isinstance(right, Sort):
        # Bag semantics: an inner ordering without Top is meaningless.
        return Apply(apply.kind, left, right.child, apply.predicate)

    if isinstance(right, Top):
        return None  # parameterized Top has no relational equivalent here

    return None


# ---------------------------------------------------------------------------
# Identity (4) and the semi/anti projection elision
# ---------------------------------------------------------------------------

def _push_through_project(apply: Apply, project: Project
                          ) -> RelationalOp | None:
    mapping = {c.cid: e for c, e in project.items
               if not (isinstance(e, ColumnRef) and e.column == c)}
    predicate = apply.predicate
    if predicate is not None and mapping:
        predicate = predicate.substitute_columns(mapping)

    if apply.kind.left_only_output:
        # Semi/anti joins ignore the right-side output entirely; the
        # projection can simply be dropped (after predicate inlining).
        return Apply(apply.kind, apply.left, project.child, predicate)

    if apply.kind is JoinKind.INNER:
        # Identity (4): π_{v ∪ columns(R)} (R A× E)
        inner = Apply(JoinKind.INNER, apply.left, project.child, predicate)
        items = [(c, ColumnRef(c)) for c in apply.left.output_columns()]
        items.extend(project.items)
        return Project(inner, items)

    # LEFT OUTER: pushing the projection above the Apply changes the NULL
    # padding for items that are not strict in the inner columns (a literal
    # would evaluate on padded rows).  Such items are wrapped in
    # CASE WHEN <detector IS NOT NULL> THEN item END, where the detector is
    # a non-nullable inner column — the paper's "detection of unmatched
    # rows requires a non-nullable column from the inner side" (footnote 2).
    child_ids = {c.cid for c in project.child.output_columns()}
    detector = next((c for c in project.child.output_columns()
                     if not c.nullable), None)
    items: list[tuple[Column, ScalarExpr]] = [
        (c, ColumnRef(c)) for c in apply.left.output_columns()]
    for column, expr in project.items:
        if isinstance(expr, ColumnRef) or (strict_columns(expr) & child_ids):
            items.append((column, expr))
            continue
        if detector is None:
            return None
        guarded = Case([(IsNull(ColumnRef(detector), negated=True), expr)])
        items.append((column, guarded))
    inner = Apply(JoinKind.LEFT_OUTER, apply.left, project.child, predicate)
    return Project(inner, items)


# ---------------------------------------------------------------------------
# Identity (9): scalar aggregate below Apply
# ---------------------------------------------------------------------------

def _identity9(apply: Apply, sgb: ScalarGroupBy) -> RelationalOp | None:
    left = apply.left
    if not has_key(left):
        return None

    child_ids = frozenset(c.cid for c in sgb.child.output_columns())
    aggregates, probe = _adjust_aggregates_for_outerjoin(
        sgb.aggregates, child_ids)
    child = sgb.child
    if probe is not None:
        child = Project.extend(child, [(probe, Literal(1))])

    inner = Apply(JoinKind.LEFT_OUTER, left, child)
    grouped = GroupBy(inner, left.output_columns(), aggregates)

    predicate = apply.predicate
    if apply.kind in (JoinKind.INNER, JoinKind.LEFT_OUTER):
        # A scalar aggregate returns exactly one row, so A× and A^LOJ agree.
        result: RelationalOp = grouped
        if predicate is not None:
            result = Select(result, predicate)
        return result

    # Semi/anti over a single-row input reduce to a filter on that row.
    left_columns = left.output_columns()
    if predicate is None:
        if apply.kind is JoinKind.LEFT_SEMI:
            return left  # the single row always exists
        return Select(left, Literal(False))  # anti of a non-empty input
    if apply.kind is JoinKind.LEFT_SEMI:
        return Project.passthrough(Select(grouped, predicate), left_columns)
    return Project.passthrough(Select(grouped, is_not_true(predicate)),
                               left_columns)


def _adjust_aggregates_for_outerjoin(
        aggregates: list[tuple[Column, AggregateCall]],
        inner_ids: frozenset[int],
) -> tuple[list[tuple[Column, AggregateCall]], Column | None]:
    """The paper's ``F → F'`` substitution for identity (9).

    The rewritten aggregates must satisfy ``agg(padded row) = agg(∅)``:

    * ``count(*)`` (where ``count(∅) ≠ count({NULL})``) becomes
      ``count(probe)`` over a manufactured non-nullable column;
    * aggregates whose argument is *strict* in the inner columns pass
      through — a NULL-padded row makes the argument NULL, which every
      SQL aggregate ignores;
    * aggregates over a **non-strict** argument (e.g.
      ``count(case when x is null then 1 end)``, produced by the
      boolean-subquery count rewrite) get the argument guarded by the
      probe: ``CASE WHEN probe IS NOT NULL THEN arg END`` evaluates to
      NULL exactly on padded rows.
    """
    probe: Column | None = None

    def need_probe() -> Column:
        nonlocal probe
        if probe is None:
            probe = Column("probe", DataType.INTEGER, nullable=False)
        return probe

    adjusted: list[tuple[Column, AggregateCall]] = []
    for column, call in aggregates:
        if not call.descriptor.empty_equals_single_null:
            adjusted.append(
                (column, AggregateCall(AggregateFunction.COUNT,
                                       ColumnRef(need_probe()),
                                       call.distinct)))
            continue
        assert call.argument is not None
        if strict_columns(call.argument) & inner_ids:
            adjusted.append((column, call))
            continue
        guarded = Case([(IsNull(ColumnRef(need_probe()), negated=True),
                         call.argument)])
        adjusted.append(
            (column, AggregateCall(call.func, guarded, call.distinct)))
    return adjusted, probe


# ---------------------------------------------------------------------------
# Identity (8): vector aggregate below Apply
# ---------------------------------------------------------------------------

def _identity8(apply: Apply,
               gb: GroupBy | LocalGroupBy) -> RelationalOp | None:
    left = apply.left

    if apply.kind.left_only_output:
        # A vector aggregate's output is non-empty iff its input is; if the
        # Apply predicate does not inspect aggregate results, the GroupBy
        # can be dropped under semi/anti (group columns pass values through).
        agg_ids = {c.cid for c, _ in gb.aggregates}
        predicate = apply.predicate
        if predicate is None or not (
                predicate.free_columns().ids() & frozenset(agg_ids)):
            return Apply(apply.kind, left, gb.child, predicate)
        if not has_key(left):
            return None
        inner = Apply(JoinKind.INNER, left, gb.child)
        grouped = type(gb)(inner,
                           left.output_columns() + list(gb.group_columns),
                           gb.aggregates)
        filtered = Select(grouped, predicate)
        if apply.kind is JoinKind.LEFT_SEMI:
            # Keep left rows that produced at least one surviving group.
            return _distinct_left_rows(filtered, left)
        return None  # anti over vector aggregate with aggregate predicate

    if apply.kind is not JoinKind.INNER:
        return None  # identity (8) is stated for A×; A^LOJ padding differs
    if not has_key(left):
        return None
    inner = Apply(JoinKind.INNER, left, gb.child)
    grouped = type(gb)(inner, left.output_columns() + list(gb.group_columns),
                       gb.aggregates)
    if apply.predicate is not None:
        return Select(grouped, apply.predicate)
    return grouped


def _distinct_left_rows(rel: RelationalOp, left: RelationalOp) -> RelationalOp:
    """Project to the left schema and remove duplicates (left has a key,
    so grouping by its columns is exact)."""
    projected = Project.passthrough(rel, left.output_columns())
    return GroupBy(projected, left.output_columns(), [])


# ---------------------------------------------------------------------------
# Joins below Apply
# ---------------------------------------------------------------------------

def _push_into_join(apply: Apply, join: Join,
                    config: ApplyRemovalConfig) -> RelationalOp | None:
    left_ids = frozenset(c.cid for c in apply.left.output_columns())

    def correlated(node: RelationalOp) -> bool:
        return bool(node.outer_references().ids() & left_ids)

    predicate_correlated = (
        join.predicate is not None
        and bool(join.predicate.free_columns().ids() & left_ids))

    if join.kind is JoinKind.INNER:
        if predicate_correlated:
            # Extract the correlated ON predicate so the Select-folding rule
            # can absorb it into the Apply.
            return Apply(apply.kind, apply.left,
                         Select(Join.cross(join.left, join.right),
                                join.predicate),
                         apply.predicate)
        left_corr = correlated(join.left)
        right_corr = correlated(join.right)
        if left_corr and not right_corr and apply.kind is JoinKind.INNER:
            pushed = Apply(JoinKind.INNER, apply.left, join.left)
            inner = Join(JoinKind.INNER, pushed, join.right, join.predicate)
            if apply.predicate is not None:
                return Select(inner, apply.predicate)
            # Column order: Apply output is R ++ (E1 ++ E2) — matches.
            return inner
        if right_corr and not left_corr and apply.kind is JoinKind.INNER:
            pushed = Apply(JoinKind.INNER, apply.left, join.right)
            # Output order of Join(pushed, E1) is R ++ E2 ++ E1; restore.
            inner = Join(JoinKind.INNER, pushed, join.left, join.predicate)
            out = (apply.left.output_columns() + join.left.output_columns()
                   + join.right.output_columns())
            result: RelationalOp = inner
            if apply.predicate is not None:
                result = Select(result, apply.predicate)
            return Project.passthrough(result, out)
        if left_corr and right_corr and config.class2_rewrites \
                and apply.kind is JoinKind.INNER and has_key(apply.left):
            return _identity7(apply, join)
        return None

    if join.kind is JoinKind.LEFT_OUTER:
        return _push_into_outerjoin(apply, join, left_ids, correlated)

    # Semi/anti joins under Apply are left correlated (rare).
    return None


def _push_into_outerjoin(apply: Apply, join: Join,
                         left_ids: frozenset[int],
                         correlated) -> RelationalOp | None:
    """Apply over a LEFT OUTER JOIN (arises when an inner decorrelation
    step produced the outerjoin before the outer Apply was removed).

    ``R A⊗ (E1 LOJ_p E2) = (R A⊗ E1) LOJ_p E2`` when ``E2`` is
    uncorrelated: the padded side is computed once and the (possibly
    correlated) predicate sees R's columns from the pushed-down left
    side.  For ``⊗`` = LOJ itself, the rewrite additionally needs ``p``
    null-rejecting on ``E1`` so an R-row padded at the Apply level cannot
    spuriously match ``E2``.  Semi/anti Apply ignores the LOJ's preserved
    right side entirely (E1's rows decide emptiness).
    """
    e1, e2 = join.left, join.right

    if apply.kind.left_only_output:
        predicate = apply.predicate
        if predicate is not None:
            used = predicate.free_columns().ids()
            e2_ids = frozenset(c.cid for c in e2.output_columns())
            if used & e2_ids:
                return None
        # LOJ preserves every E1 row, so (non)emptiness is E1's alone.
        return Apply(apply.kind, apply.left, e1, predicate)

    if correlated(e2):
        return None
    if apply.predicate is not None:
        return None

    if apply.kind is JoinKind.INNER:
        pushed = Apply(JoinKind.INNER, apply.left, e1)
        return Join(JoinKind.LEFT_OUTER, pushed, e2, join.predicate)

    if apply.kind is JoinKind.LEFT_OUTER:
        from ...algebra import null_rejected_columns

        if join.predicate is None:
            return None
        e1_ids = frozenset(c.cid for c in e1.output_columns())
        if not (null_rejected_columns(join.predicate) & e1_ids):
            return None
        pushed = Apply(JoinKind.LEFT_OUTER, apply.left, e1)
        return Join(JoinKind.LEFT_OUTER, pushed, e2, join.predicate)

    return None


def _identity7(apply: Apply, join: Join) -> RelationalOp:
    """R A× (E1 × E2) = (R A× E1) ⋈_{R.key} (R A× E2) — Class 2."""
    left = apply.left
    left_clone, mapping = clone_with_fresh_columns(left)
    e2 = substitute_outer_columns(
        join.right,
        {cid: ColumnRef(col) for cid, col in mapping.items()})
    a1 = Apply(JoinKind.INNER, left, join.left)
    a2 = Apply(JoinKind.INNER, left_clone, e2)
    from ...algebra import derive_keys, equals
    key = min(derive_keys(left), key=len)
    by_id = {c.cid: c for c in left.output_columns()}
    key_equalities = [
        equals(by_id[cid], mapping[cid]) for cid in sorted(key)]
    parts = list(key_equalities)
    if join.predicate is not None:
        parts.append(join.predicate)
    joined = Join(JoinKind.INNER, a1, a2, conjunction(parts))
    out = (left.output_columns() + join.left.output_columns()
           + join.right.output_columns())
    result: RelationalOp = joined
    if apply.predicate is not None:
        result = Select(result, apply.predicate)
    return Project.passthrough(result, out)


# ---------------------------------------------------------------------------
# Identities (5)/(6): set operations below Apply — Class 2
# ---------------------------------------------------------------------------

def _identity5(apply: Apply, union: UnionAll) -> RelationalOp:
    """R A× (E1 ∪ E2 ∪ …) = (R1 A× E1) ∪ (R2 A× E2) ∪ … with fresh copies
    of R per branch; the original R columns survive as union outputs."""
    left = apply.left
    left_columns = left.output_columns()
    branches: list[RelationalOp] = []
    maps: list[list[Column]] = []
    for source, imap in zip(union.inputs, union.input_maps):
        clone, mapping = clone_with_fresh_columns(left)
        rebound = substitute_outer_columns(
            source, {cid: ColumnRef(col) for cid, col in mapping.items()})
        branches.append(Apply(JoinKind.INNER, clone, rebound))
        maps.append([mapping[c.cid] for c in left_columns] + list(imap))
    outputs = list(left_columns) + list(union.columns)
    return UnionAll(branches, outputs, maps)


def _identity6(apply: Apply, diff: Difference) -> RelationalOp:
    """R A× (E1 − E2) = (R1 A× E1) − (R2 A× E2) with fresh copies of R."""
    left = apply.left
    left_columns = left.output_columns()

    def branch(source: RelationalOp):
        clone, mapping = clone_with_fresh_columns(left)
        rebound = substitute_outer_columns(
            source, {cid: ColumnRef(col) for cid, col in mapping.items()})
        return (Apply(JoinKind.INNER, clone, rebound),
                [mapping[c.cid] for c in left_columns])

    left_branch, left_r_cols = branch(diff.left)
    right_branch, right_r_cols = branch(diff.right)
    outputs = list(left_columns) + list(diff.columns)
    return Difference(left_branch, right_branch, outputs,
                      left_r_cols + list(diff.left_map),
                      right_r_cols + list(diff.right_map))
