"""Subquery classification — paper Section 2.5.

The paper delineates three broad classes of subquery usage:

* **Class 1** — removable with no additional common subexpressions (the
  simple select/project/join/aggregate block; fully flattened during
  normalization);
* **Class 2** — removable only by introducing common subexpressions
  (identities (5)/(6)/(7): set operations or doubly-correlated joins under
  Apply; kept as Apply by default);
* **Class 3** — exception subqueries requiring scalar-specific run-time
  behaviour (``Max1row`` errors, conditional CASE-branch execution); kept
  as Apply.

``classify_query`` reports, for each subquery of a SQL statement, its
class and the reason — by running normalization and inspecting what
remains.  Used for diagnostics and to pin the paper's taxonomy in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ...algebra import (Apply, Difference, Max1row, RelationalOp, Top,
                        UnionAll, collect_nodes)
from .normalizer import NormalizeConfig, normalize


class SubqueryClass(enum.Enum):
    CLASS1 = "class 1 (flattened)"
    CLASS2 = "class 2 (common subexpressions required)"
    CLASS3 = "class 3 (exception subquery)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SubqueryReport:
    """Classification of one residual (or eliminated) subquery."""

    subquery_class: SubqueryClass
    reason: str


def classify_residual_applies(normalized: RelationalOp
                              ) -> list[SubqueryReport]:
    """Classify the Apply operators remaining after normalization.

    An empty result means every subquery was Class 1 — the normal form is
    correlation-free.
    """
    reports: list[SubqueryReport] = []
    for apply_op in collect_nodes(normalized,
                                  lambda n: isinstance(n, Apply)):
        assert isinstance(apply_op, Apply)
        if not apply_op.is_correlated():
            continue  # an uncorrelated Apply is just a join in waiting
        reports.append(_classify_apply(apply_op))
    return reports


def _classify_apply(apply_op: Apply) -> SubqueryReport:
    if apply_op.guard is not None:
        return SubqueryReport(
            SubqueryClass.CLASS3,
            "conditional scalar execution: the subquery sits in a CASE "
            "branch and must not be evaluated eagerly")
    blockers = collect_nodes(
        apply_op.right,
        lambda n: isinstance(n, (Max1row, Top, UnionAll, Difference)))
    for blocker in blockers:
        if isinstance(blocker, Max1row):
            return SubqueryReport(
                SubqueryClass.CLASS3,
                "Max1row: the subquery may return several rows and must "
                "raise a run-time error when it does")
        if isinstance(blocker, Top):
            return SubqueryReport(
                SubqueryClass.CLASS3,
                "parameterized Top: per-row row limits have no "
                "relational formulation")
        if isinstance(blocker, UnionAll):
            return SubqueryReport(
                SubqueryClass.CLASS2,
                "UNION ALL under Apply: identity (5) would duplicate the "
                "outer relation")
        if isinstance(blocker, Difference):
            return SubqueryReport(
                SubqueryClass.CLASS2,
                "EXCEPT ALL under Apply: identity (6) would duplicate the "
                "outer relation")
    return SubqueryReport(
        SubqueryClass.CLASS2,
        "removal requires introducing common subexpressions "
        "(doubly-correlated join or missing key)")


def classify_query(db, sql: str) -> list[SubqueryReport]:
    """Classify the subqueries of a SQL statement against a database.

    Returns one report per *residual* correlated Apply; subqueries that
    flattened away (Class 1) produce no report.
    """
    from ...sql import parse

    bound = db._binder.bind(parse(sql))
    normalized = normalize(bound.rel, NormalizeConfig())
    return classify_residual_applies(normalized)
