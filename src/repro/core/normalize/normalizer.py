"""Query normalization pipeline — paper Sections 2 and 4.

``normalize`` takes the binder's mutually recursive tree to the paper's
normal form:

1. **remove mutual recursion** — subqueries become Apply operators
   (Section 2.2);
2. **remove correlations** — Apply is pushed down and eliminated via
   identities (1)–(9) (Section 2.3); Class 2/3 residues stay as Apply;
3. **simplify** — outerjoin → join under derived null-rejection, Max1row
   elision, select/project cleanups.

"At the end of normalization, most common forms of subqueries have been
turned into some join variant" (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...algebra import RelationalOp
from ...errors import PlanError
from .apply_removal import ApplyRemovalConfig, remove_applies
from .mutual_recursion import remove_subqueries
from .oj_simplify import simplify_outerjoins
from .simplify import simplify

#: Maximum relational-tree depth accepted by normalization.  The rewrite
#: passes are recursive; a deeper tree (programmatically constructed, or
#: grown by pathological rewrites) would die with a raw RecursionError,
#: so it is rejected up front with a clear PlanError instead.  SQL text
#: cannot get near this: the parser caps nesting far lower.
MAX_PLAN_DEPTH = 128


def tree_depth(rel: RelationalOp) -> int:
    """Depth of a relational tree, computed iteratively (never recurses,
    so it is safe on exactly the trees the cap exists to reject)."""
    deepest = 0
    stack = [(rel, 1)]
    while stack:
        node, depth = stack.pop()
        if depth > deepest:
            deepest = depth
        for child in node.children:
            stack.append((child, depth + 1))
    return deepest


def check_plan_depth(rel: RelationalOp,
                     limit: int = MAX_PLAN_DEPTH) -> None:
    depth = tree_depth(rel)
    if depth > limit:
        raise PlanError(
            f"relational tree is nested {depth} levels deep, beyond the "
            f"supported maximum of {limit}; simplify the query")


@dataclass
class NormalizeConfig:
    """Feature switches, used by the benchmarks' ablation configurations."""

    decorrelate: bool = True
    class2_rewrites: bool = False
    simplify_outerjoins: bool = True


def normalize(rel: RelationalOp,
              config: NormalizeConfig | None = None) -> RelationalOp:
    """Run the full normalization pipeline."""
    from ...analysis import PlanAnalyzer

    config = config or NormalizeConfig()
    analyzer = PlanAnalyzer.for_normalization()
    check_plan_depth(rel)
    rel = remove_subqueries(rel)
    rel = simplify(rel)
    if analyzer is not None:
        # remove_subqueries leaves no scalar-embedded subtrees in any
        # configuration, so from here on their presence is a violation.
        analyzer.check_logical(rel, stage="normalize:remove_subqueries")
    # Apply removal and outerjoin simplification feed each other: an
    # Apply[LOJ] stuck at a UnionAll becomes removable once a null-rejecting
    # predicate turns it into Apply[inner].  Iterate to fixpoint.
    from ...algebra import explain
    for _ in range(4):
        before = explain(rel)
        if config.decorrelate:
            rel = remove_applies(
                rel,
                ApplyRemovalConfig(class2_rewrites=config.class2_rewrites))
            rel = simplify(rel)
            if analyzer is not None:
                analyzer.check_logical(rel,
                                       stage="normalize:remove_applies")
        if config.simplify_outerjoins:
            simplified = simplify_outerjoins(rel)
            if analyzer is not None:
                analyzer.check_oj_simplification(rel, simplified)
            rel = simplify(simplified)
            if analyzer is not None:
                analyzer.check_logical(
                    rel, stage="normalize:simplify_outerjoins")
        if explain(rel) == before:
            break
    return rel
