"""Tree simplifications run during normalization.

Small, semantics-preserving cleanups: constant folding of literal-only
scalar expressions (so e.g. ``date '1993-07-01' + interval '3' month``
becomes a literal instead of per-row work), Max1row elision from
key-derived cardinality facts (paper Section 2.4), identity-projection
removal, adjacent-Select merging, constant-predicate folding,
duplicate-elimination removal when the input is already key-unique.
"""

from __future__ import annotations

from typing import Any

from ...algebra import (And, Apply, Case, ColumnRef, GroupBy, Join,
                        JoinKind, Literal, Max1row, Not, Or, Parameter,
                        Project, RelationalOp, ScalarExpr, Select, Sort,
                        Top, conjunction, conjuncts, derive_keys,
                        max_one_row, transform_bottom_up)
from ...algebra.scalar import AggregateCall


def simplify(rel: RelationalOp) -> RelationalOp:
    """Apply local simplifications bottom-up until fixpoint."""
    for _ in range(16):
        changed = False

        def step(node: RelationalOp) -> RelationalOp:
            nonlocal changed
            folded = node.map_expressions(fold_constants)
            if folded.local_expressions() != node.local_expressions():
                changed = True
                node = folded
            rewritten = _simplify_node(node)
            if rewritten is not None:
                changed = True
                return rewritten
            return node

        rel = transform_bottom_up(rel, step)
        if not changed:
            return rel
    return rel


def fold_constants(expr: ScalarExpr) -> ScalarExpr:
    """Evaluate literal-only subexpressions at compile time.

    Sound under 3VL; anything that would raise at run time (division by
    zero) is left in place so the error still surfaces during execution.
    Boolean connectives absorb constant arms (``TRUE AND x → x``,
    ``FALSE AND x → FALSE``, symmetric for OR).
    """
    if isinstance(expr, AggregateCall):
        if expr.argument is None:
            return expr
        return expr.with_children((fold_constants(expr.argument),))
    if expr.relational_children:
        return expr  # subqueries fold after decorrelation, not here

    children = tuple(fold_constants(c) for c in expr.children)
    if any(n is not o for n, o in zip(children, expr.children)):
        expr = expr.with_children(children)

    if isinstance(expr, (Literal, ColumnRef, Parameter)):
        # A Parameter is constant per execution but not per plan — folding
        # it would freeze one binding into a cached plan.
        return expr

    if isinstance(expr, And):
        kept = []
        for arg in expr.args:
            if isinstance(arg, Literal):
                if arg.value is False:
                    return Literal(False)
                if arg.value is True:
                    continue
            kept.append(arg)
        if not kept:
            return Literal(True)
        if len(kept) == 1:
            return kept[0]
        if len(kept) != len(expr.args):
            return And(kept)
        return expr

    if isinstance(expr, Or):
        kept = []
        for arg in expr.args:
            if isinstance(arg, Literal):
                if arg.value is True:
                    return Literal(True)
                if arg.value is False:
                    continue
            kept.append(arg)
        if not kept:
            return Literal(False)
        if len(kept) == 1:
            return kept[0]
        if len(kept) != len(expr.args):
            return Or(kept)
        return expr

    if isinstance(expr, Case):
        # Prune constant-FALSE arms; take a leading constant-TRUE arm.
        whens = []
        for condition, value in expr.whens:
            if isinstance(condition, Literal):
                if condition.value is True and not whens:
                    return value
                if condition.value is not True:
                    continue
            whens.append((condition, value))
        if not whens:
            return expr.otherwise if expr.otherwise is not None \
                else Literal(None)
        if len(whens) != len(expr.whens):
            return Case(whens, expr.otherwise)
        return expr

    if all(isinstance(c, Literal) for c in expr.children) and expr.children:
        from ...executor.naive import NaiveInterpreter

        try:
            value = NaiveInterpreter(lambda name: []).scalar(expr, {})
        except Exception:
            return expr  # defer run-time errors to execution
        return Literal(value, expr.dtype)

    return expr


def _simplify_node(node: RelationalOp) -> RelationalOp | None:
    if isinstance(node, Max1row) and max_one_row(node.child):
        return node.child

    if isinstance(node, Select):
        return _simplify_select(node)

    if isinstance(node, Project):
        return _simplify_project(node)

    if isinstance(node, GroupBy) and not node.aggregates:
        # DISTINCT over an input already unique on the grouping columns is
        # a no-op (modulo projection).
        group_ids = {c.cid for c in node.group_columns}
        for key in derive_keys(node.child):
            if key <= group_ids:
                return Project.passthrough(node.child, node.group_columns)
        return None

    if isinstance(node, Sort) and isinstance(node.child, Sort):
        # Outer sort wins.
        return Sort(node.child.child, node.keys)

    return None


def _simplify_select(node: Select) -> RelationalOp | None:
    predicate = node.predicate
    if isinstance(predicate, Literal):
        if predicate.value is True:
            return node.child
        return None  # constant FALSE/NULL select kept (empty result)

    parts = conjuncts(predicate)
    kept = [p for p in parts
            if not (isinstance(p, Literal) and p.value is True)]
    if len(kept) < len(parts):
        return Select(node.child, conjunction(kept)) if kept else node.child

    if isinstance(node.child, Select):
        merged = conjunction([node.child.predicate, predicate])
        return Select(node.child.child, merged)
    return None


def _simplify_project(node: Project) -> RelationalOp | None:
    child = node.child
    if node.is_pure_passthrough():
        child_cols = child.output_columns()
        mine = node.output_columns()
        if [c.cid for c in mine] == [c.cid for c in child_cols]:
            return child
    if isinstance(child, Project):
        # Collapse Project over Project by inlining the inner expressions.
        inner = {c.cid: e for c, e in child.items}
        items = [(c, e.substitute_columns(inner)) for c, e in node.items]
        return Project(child.child, items)
    return None
