"""Removal of scalar/relational mutual recursion — paper Section 2.2.

The binder's output may contain relational subtrees *inside* scalar
expressions (Figure 3).  This pass introduces ``Apply`` operators so that
every subquery is evaluated by the relational engine before the operator
that consumes its value:

    e(Q) R   ⇒   e(q) (R A⊗ Q)

Specifically:

* a relational Select whose conjuncts are existential tests (``EXISTS``,
  ``IN <subquery>``, quantified comparisons) turns each such conjunct into
  an Apply-semijoin / Apply-antisemijoin (Section 2.4, "common case that is
  further optimized");
* scalar-valued subqueries anywhere in an expression are computed by an
  Apply below the consuming operator, ``A×`` when the subquery provably
  returns a row (scalar aggregation), left-outer Apply otherwise so that an
  empty result becomes NULL;
* boolean-valued subqueries in *non-conjunct* positions (e.g. under OR)
  are rewritten as scalar count aggregates (Section 2.4: "the subquery can
  be rewritten as a scalar count aggregate"), preserving full three-valued
  semantics via a CASE over match/unknown counts.

After this pass the tree contains no relational-valued scalar nodes; the
remaining correlations live in Apply operators, ready for Apply removal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...algebra import (AggregateCall, AggregateFunction, Apply, Case,
                        Column, ColumnRef, Comparison, DataType,
                        ExistsSubquery, GroupBy, InSubquery, IsNull, Join,
                        JoinKind, Literal, LocalGroupBy, Not, Or, Project,
                        QuantifiedComparison, RelationalOp, ScalarExpr,
                        ScalarGroupBy, ScalarSubquery, Select, Sort,
                        conjunction, conjuncts, never_empty)
from ...algebra.datatypes import negate_comparison
from ...errors import PlanError


@dataclass
class _SubqueryIntro:
    """One Apply to add below the consuming operator.

    ``guard`` implements Section 2.4's conditional scalar execution: the
    Apply runs the subquery only when the guard is TRUE (rows from a
    non-taken CASE branch are NULL-padded without evaluation).
    """

    kind: JoinKind
    query: RelationalOp
    guard: ScalarExpr | None = None


def remove_subqueries(rel: RelationalOp) -> RelationalOp:
    """Eliminate relational-valued scalar nodes by introducing Apply."""
    # Children first (inner queries of derived tables etc.).
    children = [remove_subqueries(c) for c in rel.children]
    if any(n is not o for n, o in zip(children, rel.children)):
        rel = rel.with_children(children)

    # Normalize the *inner* trees of subqueries hanging off this node's
    # scalar expressions before lifting them out.
    if rel.contains_subquery():
        rel = rel.map_expressions(_normalize_inner_queries)

    if not rel.contains_subquery():
        return rel

    if isinstance(rel, Select):
        return _rewrite_select(rel)
    if isinstance(rel, Project):
        return _rewrite_project(rel)
    if isinstance(rel, Join):
        if rel.kind is JoinKind.INNER and rel.predicate is not None:
            # Fall back to select-over-cross so the Select machinery applies.
            return _rewrite_select(
                Select(Join.cross(rel.left, rel.right), rel.predicate))
        raise PlanError(
            f"subquery in {rel.kind.value} join predicate is not supported")
    if isinstance(rel, (GroupBy, ScalarGroupBy, LocalGroupBy)):
        return _rewrite_groupby(rel)
    if isinstance(rel, Sort):
        raise PlanError("subquery inside a sort key is not supported")
    raise PlanError(f"subquery under {type(rel).__name__} is not supported")


def _normalize_inner_queries(expr: ScalarExpr) -> ScalarExpr:
    """Recursively run subquery removal on nested query trees."""
    if isinstance(expr, ScalarSubquery):
        return ScalarSubquery(remove_subqueries(expr.query))
    if isinstance(expr, ExistsSubquery):
        return ExistsSubquery(remove_subqueries(expr.query), expr.negated)
    if isinstance(expr, InSubquery):
        return InSubquery(_normalize_inner_queries(expr.needle),
                          remove_subqueries(expr.query), expr.negated)
    if isinstance(expr, QuantifiedComparison):
        return QuantifiedComparison(expr.op, expr.quantifier,
                                    _normalize_inner_queries(expr.needle),
                                    remove_subqueries(expr.query))
    children = tuple(_normalize_inner_queries(c) for c in expr.children)
    if all(n is o for n, o in zip(children, expr.children)):
        return expr
    return expr.with_children(children)


# ---------------------------------------------------------------------------
# Select: existential conjuncts → Apply semijoin/antisemijoin
# ---------------------------------------------------------------------------

def _rewrite_select(sel: Select) -> RelationalOp:
    original_outputs = sel.output_columns()
    rel = sel.child
    residual: list[ScalarExpr] = []

    for part in conjuncts(sel.predicate):
        part, negated = _strip_not(part)
        if isinstance(part, ExistsSubquery):
            effective = part.negated != negated
            kind = JoinKind.LEFT_ANTI if effective else JoinKind.LEFT_SEMI
            rel = Apply(kind, rel, part.query)
            continue
        if isinstance(part, InSubquery) and not part.needle.contains_subquery():
            effective = part.negated != negated
            rel = _in_to_apply(rel, part.needle, part.query, effective)
            continue
        if isinstance(part, QuantifiedComparison) \
                and not part.needle.contains_subquery():
            rel = _quantified_to_apply(rel, part, negated)
            continue
        # Not an existential conjunct: restore the NOT and fall through to
        # generic scalar-subquery extraction.
        residual.append(Not(part) if negated else part)

    introductions: list[tuple[_SubqueryIntro, list[Column]]] = []
    rewritten_parts = [_extract_scalar_subqueries(p, introductions)
                       for p in residual]
    rel = _attach_introductions(rel, introductions)

    if rewritten_parts:
        rel = Select(rel, conjunction(rewritten_parts))
    if [c.cid for c in rel.output_columns()] != \
            [c.cid for c in original_outputs]:
        rel = Project.passthrough(rel, original_outputs)
    return rel


def _strip_not(expr: ScalarExpr) -> tuple[ScalarExpr, bool]:
    negated = False
    while isinstance(expr, Not):
        expr = expr.arg
        negated = not negated
    return expr, negated


def _in_to_apply(rel: RelationalOp, needle: ScalarExpr, query: RelationalOp,
                 negated: bool) -> Apply:
    """``needle [NOT] IN Q`` as a filtering conjunct.

    Positive IN keeps rows with a true match: semijoin on ``needle = x``.
    NOT IN keeps rows with *no true-or-unknown match*: antijoin on
    ``needle = x OR needle IS NULL OR x IS NULL`` (the IS NULL disjuncts are
    elided for provably non-nullable sides).
    """
    (column,) = query.output_columns()
    match = Comparison("=", needle, ColumnRef(column))
    if not negated:
        return Apply(JoinKind.LEFT_SEMI, rel, query, match)
    parts: list[ScalarExpr] = [match]
    if needle.nullable:
        parts.append(IsNull(needle))
    if column.nullable:
        parts.append(IsNull(ColumnRef(column)))
    predicate = parts[0] if len(parts) == 1 else Or(parts)
    return Apply(JoinKind.LEFT_ANTI, rel, query, predicate)


def _quantified_to_apply(rel: RelationalOp, q: QuantifiedComparison,
                         negated: bool) -> Apply:
    """``needle op ANY|ALL Q`` as a filtering conjunct.

    ANY keeps rows with a true match: semijoin on ``needle op x``.
    ALL keeps rows with no false-or-unknown match: antijoin on
    ``NOT(needle op x) OR needle IS NULL OR x IS NULL``.
    A negated conjunct flips the quantifier and the operator
    (NOT (e op ANY Q) ≡ e !op ALL Q).
    """
    op, quantifier = q.op, q.quantifier
    if negated:
        op = negate_comparison(op)
        quantifier = "ALL" if quantifier == "ANY" else "ANY"
    (column,) = q.query.output_columns()
    if quantifier == "ANY":
        match = Comparison(op, q.needle, ColumnRef(column))
        return Apply(JoinKind.LEFT_SEMI, rel, q.query, match)
    parts: list[ScalarExpr] = [
        Comparison(negate_comparison(op), q.needle, ColumnRef(column))]
    if q.needle.nullable:
        parts.append(IsNull(q.needle))
    if column.nullable:
        parts.append(IsNull(ColumnRef(column)))
    predicate = parts[0] if len(parts) == 1 else Or(parts)
    return Apply(JoinKind.LEFT_ANTI, rel, q.query, predicate)


def _rewrite_groupby(gb) -> RelationalOp:
    """Subqueries inside aggregate arguments.

    ``sum(<expr with subquery>)`` computes the subquery per *input* row of
    the aggregation: the Apply chain goes below the GroupBy and the
    argument aggregates the computed column.
    """
    introductions: list[tuple[_SubqueryIntro, list[Column]]] = []
    aggregates = []
    for column, call in gb.aggregates:
        if call.argument is None or not call.argument.contains_subquery():
            aggregates.append((column, call))
            continue
        argument = _extract_scalar_subqueries(call.argument, introductions)
        aggregates.append(
            (column, AggregateCall(call.func, argument, call.distinct)))
    child = _attach_introductions(gb.child, introductions)
    if isinstance(gb, ScalarGroupBy):
        return ScalarGroupBy(child, aggregates)
    return type(gb)(child, gb.group_columns, aggregates)


# ---------------------------------------------------------------------------
# Project (and residual predicates): scalar subquery extraction
# ---------------------------------------------------------------------------

def _rewrite_project(project: Project) -> RelationalOp:
    introductions: list[tuple[_SubqueryIntro, list[Column]]] = []
    items = [(c, _extract_scalar_subqueries(e, introductions))
             for c, e in project.items]
    child = _attach_introductions(project.child, introductions)
    return Project(child, items)


def _attach_introductions(rel: RelationalOp,
                          introductions) -> RelationalOp:
    for intro, _columns in introductions:
        if intro.guard is not None:
            rel = Apply(JoinKind.LEFT_OUTER, rel, intro.query,
                        guard=intro.guard)
        else:
            rel = Apply(intro.kind, rel, intro.query)
    return rel


def _extract_scalar_subqueries(expr: ScalarExpr, introductions,
                               guard: ScalarExpr | None = None
                               ) -> ScalarExpr:
    """Replace relational-valued scalar nodes by references to Apply output.

    Appends to ``introductions`` in evaluation order; the caller attaches
    the Apply chain below the consuming operator.  ``guard`` carries the
    conditional-execution context of enclosing CASE branches (Section
    2.4): every subquery introduced under it executes only when the guard
    holds.
    """
    if isinstance(expr, ScalarSubquery):
        (column,) = expr.query.output_columns()
        kind = JoinKind.INNER if never_empty(expr.query) else JoinKind.LEFT_OUTER
        introductions.append(
            (_SubqueryIntro(kind, expr.query, guard), [column]))
        return ColumnRef(column.with_nullability(True))

    if isinstance(expr, ExistsSubquery):
        count_col = _count_aggregate_over(expr.query, introductions, guard)
        op = "=" if expr.negated else ">"
        return Comparison(op, ColumnRef(count_col), Literal(0))

    if isinstance(expr, InSubquery):
        needle = _extract_scalar_subqueries(expr.needle, introductions,
                                            guard)
        value = _membership_value(needle, "=", expr.query, introductions,
                                  guard)
        return Not(value) if expr.negated else value

    if isinstance(expr, QuantifiedComparison):
        needle = _extract_scalar_subqueries(expr.needle, introductions,
                                            guard)
        if expr.quantifier == "ANY":
            return _membership_value(needle, expr.op, expr.query,
                                     introductions, guard)
        # e op ALL Q  ≡  NOT (e !op ANY Q)   (exact under 3VL)
        inverted = _membership_value(needle, negate_comparison(expr.op),
                                     expr.query, introductions, guard)
        return Not(inverted)

    if isinstance(expr, Case) and expr.contains_subquery():
        return _extract_from_case(expr, introductions, guard)

    children = tuple(_extract_scalar_subqueries(c, introductions, guard)
                     for c in expr.children)
    if all(n is o for n, o in zip(children, expr.children)):
        return expr
    return expr.with_children(children)


def _extract_from_case(expr: Case, introductions,
                       guard: ScalarExpr | None) -> ScalarExpr:
    """CASE with subqueries in its branches — Section 2.4's *conditional
    scalar execution*.

    Conditions evaluate unconditionally left to right; each branch value
    evaluates only when its condition is the first TRUE one, so subqueries
    inside branch values receive a guard ("previous conditions not TRUE
    and mine TRUE") and must not be flattened eagerly.
    """
    from .apply_removal import is_not_true

    def combine(parts: list[ScalarExpr]) -> ScalarExpr:
        merged = conjunction(parts)
        if guard is not None:
            merged = conjunction([guard, merged])
        return merged

    prior: list[ScalarExpr] = []
    new_whens = []
    for condition, value in expr.whens:
        new_condition = _extract_scalar_subqueries(condition, introductions,
                                                   guard)
        branch_guard = combine(prior + [new_condition])
        new_value = _extract_scalar_subqueries(value, introductions,
                                               branch_guard)
        new_whens.append((new_condition, new_value))
        prior.append(is_not_true(new_condition))
    otherwise = None
    if expr.otherwise is not None:
        else_guard = combine(list(prior)) if prior else guard
        otherwise = _extract_scalar_subqueries(expr.otherwise,
                                               introductions, else_guard)
    return Case(new_whens, otherwise)


def _count_aggregate_over(query: RelationalOp, introductions,
                          guard: ScalarExpr | None = None) -> Column:
    """Introduce ``A× (ScalarGroupBy count(*))`` over the subquery."""
    count_col = Column("cnt", DataType.INTEGER, nullable=False)
    counted = ScalarGroupBy(
        query, [(count_col, AggregateCall(AggregateFunction.COUNT_STAR))])
    introductions.append(
        (_SubqueryIntro(JoinKind.INNER, counted, guard), [count_col]))
    return count_col


def _membership_value(needle: ScalarExpr, op: str, query: RelationalOp,
                      introductions,
                      guard: ScalarExpr | None = None) -> ScalarExpr:
    """The 3VL truth value of ``needle op ANY(query)`` as a scalar.

    Computed as a scalar aggregate over the subquery (paper Section 2.4's
    count rewrite), with full UNKNOWN handling::

        true_cnt    = count(case when needle op x       then 1 end)
        unknown_cnt = count(case when needle op x is unknown then 1 end)
        value       = case when true_cnt > 0 then TRUE
                           when unknown_cnt > 0 then NULL
                           else FALSE end
    """
    (column,) = query.output_columns()
    x = ColumnRef(column)
    match = Comparison(op, needle, x)
    one = Literal(1)
    true_arg = Case([(match, one)])
    unknown_parts: list[ScalarExpr] = []
    if needle.nullable:
        unknown_parts.append(IsNull(needle))
    if column.nullable:
        unknown_parts.append(IsNull(x))

    true_cnt = Column("match_cnt", DataType.INTEGER, nullable=False)
    aggregates = [(true_cnt, AggregateCall(AggregateFunction.COUNT, true_arg))]
    unknown_cnt = None
    if unknown_parts:
        unknown_pred: ScalarExpr = (unknown_parts[0] if len(unknown_parts) == 1
                                    else Or(unknown_parts))
        unknown_arg = Case([(unknown_pred, one)])
        unknown_cnt = Column("unknown_cnt", DataType.INTEGER, nullable=False)
        aggregates.append(
            (unknown_cnt, AggregateCall(AggregateFunction.COUNT, unknown_arg)))

    counted = ScalarGroupBy(query, aggregates)
    introductions.append((_SubqueryIntro(JoinKind.INNER, counted, guard),
                          [c for c, _ in aggregates]))

    whens: list[tuple[ScalarExpr, ScalarExpr]] = [
        (Comparison(">", ColumnRef(true_cnt), Literal(0)), Literal(True))]
    if unknown_cnt is not None:
        whens.append((Comparison(">", ColumnRef(unknown_cnt), Literal(0)),
                      Literal(None, DataType.BOOLEAN)))
    return Case(whens, Literal(False))
