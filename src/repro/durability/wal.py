"""The write-ahead log: length-prefixed, CRC32-checksummed JSON records.

On-disk format — a flat sequence of records, each::

    [4 bytes little-endian payload length]
    [4 bytes little-endian CRC32 of the payload]
    [payload: compact JSON, one object per record]

Every record carries a monotonically increasing ``lsn``.  A crash can
leave at most a *torn tail*: a partially written final record.  The CRC
plus length prefix make the torn tail detectable with certainty (up to
CRC collision), and :func:`scan_records` stops at the first byte that is
not part of a fully valid record — recovery truncates there and the log
is again exactly the committed prefix.

Write protocol (ARIES-style WAL-before-install): the committer appends
and fsyncs its record *before* installing the new table versions in
memory.  A crash after fsync but before install replays the commit; a
crash before the record is complete loses the commit entirely; there is
no schedule that applies half of one.

Fault-injection sites: ``wal.append`` fires before any byte is written
(torn mode persists a truncated prefix of the record first, simulating a
crash mid-write); ``wal.fsync`` fires after the OS-level write but
before fsync, the window where durability is genuinely unknown.  A
failed append never poisons the log: the next append truncates back to
the last known-good boundary before writing.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any

from .. import faultinject
from ..errors import DurabilityError, InjectedFault

_HEADER = struct.Struct("<II")

#: Bytes of framing per record (length + CRC32).
HEADER_BYTES = _HEADER.size


def frame_record(payload: bytes) -> bytes:
    """Wrap a JSON payload in the length+CRC frame."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def encode_record(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    return frame_record(payload)


def decode_frame(data: bytes, offset: int = 0) -> "tuple[Any, int] | None":
    """Decode one record at ``offset``; ``None`` when the bytes there are
    not a complete, checksum-valid record (the torn tail)."""
    header = data[offset:offset + HEADER_BYTES]
    if len(header) < HEADER_BYTES:
        return None
    length, crc = _HEADER.unpack(header)
    start = offset + HEADER_BYTES
    payload = data[start:start + length]
    if len(payload) < length or zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record, start + length


def scan_records(data: bytes) -> tuple[list[dict], int]:
    """Parse the longest valid record prefix of ``data``.

    Returns ``(records, valid_bytes)``: everything after ``valid_bytes``
    is a torn tail (or garbage) and must be truncated by recovery.
    """
    records: list[dict] = []
    offset = 0
    while True:
        start = offset
        decoded = decode_frame(data, offset)
        if decoded is None:
            return records, start
        record, offset = decoded
        if not isinstance(record, dict) or "lsn" not in record:
            # Structurally valid JSON that is not a WAL record: treat as
            # corruption starting at this record's frame.
            return records, start
        records.append(record)


def read_wal(path: str) -> tuple[list[dict], int, int]:
    """Read a WAL file: ``(records, valid_bytes, total_bytes)``.

    A missing file reads as empty (first open of a fresh database).
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, 0
    records, valid = scan_records(data)
    return records, valid, len(data)


class WriteAheadLog:
    """Appender over one open WAL file.

    Not thread-safe on its own — the :class:`~repro.durability.manager.
    DurabilityManager` serializes appends under its log lock.
    """

    def __init__(self, path: str, fsync: bool = True,
                 size: int | None = None) -> None:
        self.path = path
        self.fsync = fsync
        self._file = open(path, "ab")
        #: End offset of the last fully written record — the log's
        #: known-good boundary.  Bytes past it (from a failed append)
        #: are truncated before the next write.
        self._good = os.path.getsize(path) if size is None else size

    @property
    def size(self) -> int:
        """Bytes of fully appended records (excludes any failed tail)."""
        return self._good

    def append(self, record: dict) -> int:
        """Append one record, fsync, and return the new log size.

        Raises whatever the injected fault sites raise; after a failure
        the in-memory state is unchanged and the next append self-heals
        the file back to the last good boundary first.
        """
        if self._file.closed:
            raise DurabilityError(f"write-ahead log {self.path!r} is closed")
        data = encode_record(record)
        self._heal()
        try:
            faultinject.hit("wal.append")
        except InjectedFault as fault:
            if fault.torn:
                # Crash mid-write: persist a prefix that ends mid-record
                # (and mid-byte of the length/CRC/payload stream), the
                # exact shape recovery's torn-tail truncation must fix.
                self._file.write(data[:max(1, len(data) // 2)])
                self._file.flush()
                os.fsync(self._file.fileno())
            raise
        self._file.write(data)
        self._file.flush()
        # The record is written but not yet fsynced: a crash here may or
        # may not keep it.  The commit is reported failed either way, so
        # recovery presenting it is a legal (if surprising) outcome —
        # the standard "commit outcome unknown" window.
        faultinject.hit("wal.fsync")
        if self.fsync:
            os.fsync(self._file.fileno())
        self._good += len(data)
        return self._good

    def _heal(self) -> None:
        """Truncate any partial bytes a previous failed append left."""
        self._file.flush()
        if os.path.getsize(self.path) != self._good:
            os.truncate(self.path, self._good)

    def reset(self) -> None:
        """Empty the log (checkpoint rotation; caller holds the log lock)."""
        self._file.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self._file = open(self.path, "ab")
        self._good = 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
