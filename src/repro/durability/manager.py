"""The durability manager: one database's WAL + checkpoint lifecycle.

This is the single object the rest of the engine talks to.  It is
deliberately *orthogonal* to query processing: the optimizer, executors
and algebra never see it.  Its commit hook hangs off
:meth:`repro.storage.table.Storage.install_many` (``Storage.wal``), its
DDL hook off the :class:`~repro.database.Database` facade, and recovery
rebuilds plain catalog/storage state before the first query runs.

Concurrency:

* ``log_lock`` serializes appends; every record gets the next LSN under
  it.  Commits hold their tables' writer locks *around* the append, so
  log order equals install order per table.
* ``ddl_lock`` serializes schema changes so a DDL record is always
  appended before the change is visible — no commit can reference an
  object whose creation record trails it in the log.
* :meth:`checkpoint` takes every writer lock (sorted, with a timeout —
  an aborted checkpoint is a skipped checkpoint, never a deadlock),
  then the log lock, pins a storage snapshot and publishes it.  Readers
  are untouched throughout: they read pinned immutable snapshots.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from .. import faultinject
from ..concurrency import TrackedLock, TrackedRLock
from ..errors import DurabilityError
from .checkpoint import (build_payload, load_checkpoint, write_checkpoint)
from .codec import encode_row
from .wal import WriteAheadLog, read_wal

#: Log size that triggers a checkpoint + rotation (bytes).
DEFAULT_CHECKPOINT_BYTES = 4 * 1024 * 1024

WAL_FILENAME = "wal.log"
CHECKPOINT_FILENAME = "checkpoint.json"


@dataclass(frozen=True)
class RecoveryReport:
    """What recovery found and did, kept for observability (``health``)."""

    checkpoint_lsn: int
    replayed_records: int
    truncated_bytes: int
    wal_bytes: int

    def as_dict(self) -> dict:
        return {"checkpoint_lsn": self.checkpoint_lsn,
                "replayed_records": self.replayed_records,
                "truncated_bytes": self.truncated_bytes,
                "wal_bytes": self.wal_bytes}


@dataclass
class RecoveryState:
    """The parsed durable state handed to the database for application."""

    checkpoint: dict | None
    records: list[dict] = field(default_factory=list)


class DurabilityManager:
    """WAL, checkpoints and recovery for one database directory."""

    def __init__(self, path: str, fsync: bool = True,
                 checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES) -> None:
        if checkpoint_bytes < 1:
            raise ValueError("checkpoint_bytes must be at least 1")
        self.directory = path
        self.fsync = fsync
        self.checkpoint_bytes = checkpoint_bytes
        os.makedirs(path, exist_ok=True)
        self.wal_path = os.path.join(path, WAL_FILENAME)
        self.checkpoint_path = os.path.join(path, CHECKPOINT_FILENAME)
        #: Serializes DDL end to end (validate → log → apply).
        self.ddl_lock = TrackedRLock("db.ddl")
        self._log_lock = TrackedLock("wal.log")
        self._wal: WriteAheadLog | None = None
        self._next_lsn = 1
        self._last_checkpoint_lsn = 0
        self._last_checkpoint_at: float | None = None
        self._closed = False
        self.recovery: RecoveryReport | None = None

    # -- recovery ------------------------------------------------------------------

    def recover(self) -> RecoveryState:
        """Load the checkpoint, truncate the WAL's torn tail, and return
        the records that must be replayed on top of the checkpoint.

        Called exactly once, before the first append.  The torn tail —
        any bytes after the last fully valid record — is physically
        truncated so the file is again exactly the committed prefix.
        """
        checkpoint = load_checkpoint(self.checkpoint_path)
        records, valid, total = read_wal(self.wal_path)
        if valid < total:
            os.truncate(self.wal_path, valid)
        base = int(checkpoint["lsn"]) if checkpoint else 0
        replay = [r for r in records if r["lsn"] > base]
        last_lsn = max([base] + [r["lsn"] for r in records])
        self._next_lsn = last_lsn + 1
        self._last_checkpoint_lsn = base
        if checkpoint:
            self._last_checkpoint_at = checkpoint.get("created_at")
        self._wal = WriteAheadLog(self.wal_path, fsync=self.fsync,
                                  size=valid)
        self.recovery = RecoveryReport(
            checkpoint_lsn=base, replayed_records=len(replay),
            truncated_bytes=total - valid, wal_bytes=valid)
        return RecoveryState(checkpoint=checkpoint, records=replay)

    def replay(self, state: RecoveryState) -> Iterator[dict]:
        """Yield the records to re-apply, oldest first (the
        ``recovery.replay`` fault site fires per record)."""
        for record in state.records:
            faultinject.hit("recovery.replay")
            yield record

    # -- logging -------------------------------------------------------------------

    def log_commit(self, changes: Mapping[str, Sequence[tuple]]) -> None:
        """Append one transaction's row deltas (and fsync) — called by
        ``Storage.install_many`` *before* the in-memory install, while
        the committer holds every affected table's writer lock."""
        writes = {name.lower(): [encode_row(row) for row in rows]
                  for name, rows in changes.items() if rows}
        if writes:
            self.append({"kind": "commit", "writes": writes})

    def log_ddl(self, record: dict) -> None:
        """Append one DDL record (caller holds :attr:`ddl_lock`)."""
        self.append(record)

    def append(self, record: dict) -> int:
        """Stamp the next LSN onto ``record`` and append it durably."""
        with self._log_lock:
            wal = self._require_open()
            stamped = dict(record, lsn=self._next_lsn)
            size = wal.append(stamped)
            self._next_lsn += 1
            return size

    # -- checkpointing -------------------------------------------------------------

    @property
    def wal_size(self) -> int:
        with self._log_lock:
            return self._wal.size if self._wal is not None else 0

    @property
    def checkpoint_due(self) -> bool:
        return self.wal_size >= self.checkpoint_bytes

    def checkpoint(self, database, force: bool = False,
                   lock_timeout: float = 5.0) -> bool:
        """Serialize the current state and rotate the log.

        Returns True when a checkpoint was published.  Failure modes are
        all safe-by-construction: an unacquirable writer lock or an
        injected ``wal.checkpoint`` fault aborts before the atomic
        rename, leaving the previous checkpoint and the intact WAL as
        the authoritative state.
        """
        storage = database.storage
        held: list = []
        for name, lock in storage.all_writer_locks():
            if lock.acquire(timeout=lock_timeout):
                held.append(lock)
            else:
                for acquired in held:
                    acquired.release()
                return False  # busy; try again at the next trigger
        try:
            with self._log_lock:
                wal = self._require_open()
                if not force and wal.size < self.checkpoint_bytes:
                    return False  # lost the race with another checkpoint
                payload = build_payload(
                    database.catalog, storage.snapshot(),
                    database.corrections, last_lsn=self._next_lsn - 1)
                write_checkpoint(self.checkpoint_path, payload,
                                 fsync=self.fsync)
                wal.reset()
                self._last_checkpoint_lsn = payload["lsn"]
                self._last_checkpoint_at = payload["created_at"]
                return True
        finally:
            for lock in held:
                lock.release()

    # -- observability / lifecycle ---------------------------------------------------

    def status(self) -> dict:
        """One flat liveness/readiness snapshot for ``health`` and tests."""
        with self._log_lock:
            wal_bytes = self._wal.size if self._wal is not None else 0
            next_lsn = self._next_lsn
        return {
            "enabled": True,
            "path": self.directory,
            "fsync": self.fsync,
            "wal_bytes": wal_bytes,
            "next_lsn": next_lsn,
            "checkpoint_bytes": self.checkpoint_bytes,
            "last_checkpoint_lsn": self._last_checkpoint_lsn,
            "last_checkpoint_at": self._last_checkpoint_at,
            "recovery": (self.recovery.as_dict()
                         if self.recovery is not None else None),
        }

    def close(self) -> None:
        """Close file handles.  Deliberately does *not* checkpoint: the
        WAL already holds everything committed, and recovery replays it.
        """
        with self._log_lock:
            self._closed = True
            if self._wal is not None:
                self._wal.close()

    def _require_open(self) -> WriteAheadLog:
        if self._closed or self._wal is None:
            raise DurabilityError(
                "durability manager is closed (or recover() never ran)")
        return self._wal
