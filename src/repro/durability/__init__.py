"""Crash-safe durability: write-ahead logging, checkpoints, recovery.

Layers, bottom-up:

* :mod:`~repro.durability.codec` — JSON value codec (tagged dates)
  shared with the wire protocol;
* :mod:`~repro.durability.wal` — the length-prefixed, CRC32-checksummed
  append-only log with torn-tail detection;
* :mod:`~repro.durability.checkpoint` — atomic full-image snapshots
  (tmp + fsync + rename) that let the log rotate;
* :mod:`~repro.durability.manager` — the :class:`DurabilityManager`
  owning both files, the LSN counter and the locking protocol.

The subsystem is orthogonal to query processing: ``Database(path=...)``
turns it on, ``Database()`` never touches it, and no optimizer or
executor code knows it exists.  ``python -m repro.durability <dir>``
inspects a database directory offline.
"""

from .manager import (CHECKPOINT_FILENAME, DEFAULT_CHECKPOINT_BYTES,
                      DurabilityManager, RecoveryReport, RecoveryState,
                      WAL_FILENAME)
from .wal import WriteAheadLog, read_wal, scan_records

__all__ = [
    "CHECKPOINT_FILENAME",
    "DEFAULT_CHECKPOINT_BYTES",
    "DurabilityManager",
    "RecoveryReport",
    "RecoveryState",
    "WAL_FILENAME",
    "WriteAheadLog",
    "read_wal",
    "scan_records",
]
