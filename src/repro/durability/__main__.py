"""Offline inspection of a durable database directory.

::

    python -m repro.durability /path/to/db            # summary
    python -m repro.durability /path/to/db --records  # dump WAL records

Reports the checkpoint (LSN, age, object counts), the WAL (record count,
torn-tail bytes) and, with ``--records``, every record's LSN, kind and
touched tables — the first tool to reach for when deciding whether a
directory is recoverable and what a recovery would replay.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..errors import RecoveryError
from .checkpoint import load_checkpoint
from .manager import CHECKPOINT_FILENAME, WAL_FILENAME
from .wal import read_wal


def describe_record(record: dict) -> str:
    kind = record.get("kind", "?")
    if kind == "commit":
        writes = record.get("writes", {})
        detail = ", ".join(f"{name}(+{len(rows)})"
                           for name, rows in sorted(writes.items()))
    elif kind in ("create_table", "drop_table"):
        detail = record.get("name") or record.get("table", {}).get("name", "?")
    elif kind == "create_index":
        index = record.get("index", {})
        detail = f"{index.get('name', '?')} on {index.get('table', '?')}"
    elif kind in ("create_view", "drop_view"):
        detail = record.get("name", "?")
    else:
        detail = json.dumps({k: v for k, v in record.items()
                             if k not in ("lsn", "kind")})[:60]
    return f"lsn={record.get('lsn'):>6}  {kind:<14} {detail}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.durability",
        description="Inspect a durable database directory (WAL + checkpoint)")
    parser.add_argument("directory", help="database directory (Database(path=...))")
    parser.add_argument("--records", action="store_true",
                        help="dump every WAL record")
    args = parser.parse_args(argv)

    wal_path = os.path.join(args.directory, WAL_FILENAME)
    checkpoint_path = os.path.join(args.directory, CHECKPOINT_FILENAME)

    try:
        checkpoint = load_checkpoint(checkpoint_path)
    except RecoveryError as exc:
        print(f"checkpoint: CORRUPT — {exc}")
        checkpoint = None
    else:
        if checkpoint is None:
            print("checkpoint: none")
        else:
            catalog = checkpoint["catalog"]
            rows = sum(len(r) for r in checkpoint["rows"].values())
            print(f"checkpoint: lsn={checkpoint['lsn']} "
                  f"tables={len(catalog['tables'])} "
                  f"indexes={len(catalog['indexes'])} "
                  f"views={len(catalog['views'])} rows={rows} "
                  f"corrections={len(checkpoint.get('corrections', []))}")

    records, valid, total = read_wal(wal_path)
    base = checkpoint["lsn"] if checkpoint else 0
    replayable = [r for r in records if r["lsn"] > base]
    print(f"wal: {len(records)} record(s), {valid} valid byte(s)"
          + (f", TORN TAIL of {total - valid} byte(s)"
             if total > valid else "")
          + f"; {len(replayable)} would replay")
    if args.records:
        for record in records:
            marker = " " if record["lsn"] > base else "*"  # * = in checkpoint
            print(f" {marker} {describe_record(record)}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
