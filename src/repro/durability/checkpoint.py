"""Checkpoints: an atomic full image of the database at one LSN.

A checkpoint file is a single CRC-framed JSON document (the same framing
as a WAL record, :mod:`repro.durability.wal`) holding the catalog
(tables, indexes, views), every table's rows, the runtime cardinality
corrections, and ``last_lsn`` — the newest WAL record the image covers.

Publication protocol::

    write <checkpoint>.tmp  →  fsync  →  rename over <checkpoint>  →
    fsync directory  →  reset the WAL

The rename is the commit point and is atomic, so a crash anywhere in the
protocol leaves either the old checkpoint or the new one — never a
blend.  Because every WAL record carries an LSN and replay skips records
``<= last_lsn``, a crash *between* the rename and the WAL reset is also
safe: the stale log records are simply skipped.  The ``wal.checkpoint``
fault site fires just before the rename — the widest window in which an
aborted checkpoint must leave the previous checkpoint and log intact.
"""

from __future__ import annotations

import os
import time

from .. import faultinject
from ..catalog.catalog import index_def_to_dict
from ..errors import RecoveryError
from .codec import encode_row
from .wal import decode_frame, encode_record

#: Bump when the checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT = 1


def build_payload(catalog, snapshot, corrections, last_lsn: int) -> dict:
    """The JSON image of one pinned state.

    ``snapshot`` is a :class:`~repro.storage.table.StorageSnapshot`
    (immutable, so building the image never blocks readers); ``catalog``
    and ``corrections`` must be quiesced by the caller (the checkpointer
    holds every writer lock and the log lock).
    """
    return {
        "format": CHECKPOINT_FORMAT,
        "lsn": last_lsn,
        "created_at": time.time(),
        "catalog": {
            "tables": [t.to_dict() for t in catalog.tables()],
            "indexes": [index_def_to_dict(ix) for ix in catalog.indexes()],
            "views": [{"name": name, "sql": sql}
                      for name, sql in catalog.views()],
            # Loaders use .get("matviews", []): pre-matview checkpoints
            # stay readable without a format bump.  Backing *rows* ride
            # in the table image; only definitions are recorded here.
            "matviews": [{"name": view.name, "sql": view.sql}
                         for view in catalog.matviews()],
        },
        "rows": {name: [encode_row(row)
                        for row in snapshot.get(name).rows]
                 for name in snapshot.table_names()},
        "corrections": corrections.dump_state(),
    }


def write_checkpoint(path: str, payload: dict, fsync: bool = True) -> None:
    """Atomically publish ``payload`` as the checkpoint at ``path``."""
    data = encode_record(payload)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    faultinject.hit("wal.checkpoint")
    os.replace(tmp, path)
    if fsync:
        _fsync_directory(os.path.dirname(path) or ".")


def load_checkpoint(path: str) -> dict | None:
    """Read and validate a checkpoint; ``None`` when none exists yet.

    The atomic-rename protocol means a present-but-corrupt checkpoint
    was damaged outside the database's own writes; recovery refuses to
    guess and raises :class:`~repro.errors.RecoveryError`.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return None
    decoded = decode_frame(data)
    if decoded is None:
        raise RecoveryError(
            f"checkpoint {path!r} is corrupt (bad frame or checksum)")
    payload, consumed = decoded
    if (not isinstance(payload, dict)
            or payload.get("format") != CHECKPOINT_FORMAT
            or "lsn" not in payload or consumed != len(data)):
        raise RecoveryError(
            f"checkpoint {path!r} is corrupt or from an unknown format")
    return payload


def _fsync_directory(directory: str) -> None:
    """Durably record the rename in the directory entry (POSIX); best
    effort on platforms that cannot fsync directories."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
