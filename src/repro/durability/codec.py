"""JSON value codec shared by the WAL, checkpoints and the wire protocol.

JSON cannot carry dates natively; they are tagged as
``{"__date__": "YYYY-MM-DD"}`` and reconstructed on decode, so logged and
checkpointed rows round-trip bit-identically — the same convention the
wire protocol uses (:mod:`repro.server.wire` re-exports these).
"""

from __future__ import annotations

import datetime
from typing import Any


def encode_value(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return {"__date__": value.isoformat()}
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__date__"}:
        return datetime.date.fromisoformat(value["__date__"])
    return value


def encode_row(row) -> list:
    return [encode_value(v) for v in row]


def decode_row(row) -> tuple:
    return tuple(decode_value(v) for v in row)
