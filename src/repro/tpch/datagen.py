"""dbgen-style TPC-H data generator.

Reproduces the population rules that matter to the plan-choice trade-offs
in the paper's evaluation: SF-proportional cardinalities (customer 150k·SF,
orders 10 per customer, ~4 lineitems per order, part 200k·SF, 4 suppliers
per part), the categorical value domains (25 brands, 40 containers, 150
types, 5 order priorities), key structure (lineitem part/supplier pairs
drawn from partsupp), and value ranges (quantities 1–50, dates 1992–1998,
account balances −999.99..9999.99).

Text columns are generated short — the benchmark exercises the optimizer
and executor, not string storage.  Determinism: everything derives from a
seeded ``random.Random``.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass

from ..database import Database

_BASE_DATE = datetime.date(1992, 1, 1)
_DATE_SPAN_DAYS = (datetime.date(1998, 8, 2) - _BASE_DATE).days

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
             "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
               "5-LOW"]
_CONTAINER_SIZES = ["SM", "MED", "LG", "JUMBO", "WRAP"]
_CONTAINER_KINDS = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
                    "DRUM"]
_TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
               "PROMO"]
_TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_NAME_WORDS = ["almond", "antique", "aquamarine", "azure", "beige",
               "bisque", "black", "blanched", "blue", "blush", "brown",
               "burlywood", "burnished", "chartreuse", "chiffon", "chocolate",
               "coral", "cornflower", "cornsilk", "cream", "cyan", "dark",
               "deep", "dim", "dodger", "drab", "firebrick", "floral",
               "forest", "frosted", "gainsboro", "ghost", "goldenrod",
               "green", "grey", "honeydew", "hot", "hotpink", "indian",
               "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
               "light", "lime", "linen", "magenta", "maroon", "medium",
               "metallic", "midnight", "mint", "misty", "moccasin",
               "navajo", "navy", "olive", "orange", "orchid", "pale",
               "papaya", "peach", "peru", "pink", "plum", "powder",
               "puff", "purple", "red", "rose", "rosy", "royal", "saddle",
               "salmon", "sandy", "seashell", "sienna", "sky", "slate",
               "smoke", "snow", "spring", "steel", "tan", "thistle",
               "tomato", "turquoise", "violet", "wheat", "white", "yellow"]
_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
              "TAKE BACK RETURN"]


@dataclass
class TpchCounts:
    """Row counts produced for one scale factor."""

    region: int
    nation: int
    supplier: int
    customer: int
    part: int
    partsupp: int
    orders: int
    lineitem: int


def generate_tpch(db: Database, scale_factor: float = 0.01,
                  seed: int = 20010521) -> TpchCounts:
    """Populate a TPC-H schema at the given scale factor.

    SF 1.0 would be the standard 150k customers / 6M lineitems; this pure
    Python engine targets SF ≤ 0.1.  Returns the actual row counts.
    """
    rng = random.Random(seed)

    supplier_count = max(int(10000 * scale_factor), 10)
    customer_count = max(int(150000 * scale_factor), 30)
    part_count = max(int(200000 * scale_factor), 40)
    order_count = customer_count * 10

    db.insert("region", [(i, name, "") for i, name in enumerate(_REGIONS)])
    db.insert("nation", [(i, name, region, "")
                         for i, (name, region) in enumerate(_NATIONS)])

    def supplier_comment() -> str:
        # dbgen plants "Customer ... Complaints" in a few supplier
        # comments — TPC-H Q16's NOT IN subquery needle.
        if rng.random() < 0.05:
            return f"{rng.choice(_NAME_WORDS)} Customer " \
                   f"{rng.choice(_NAME_WORDS)} Complaints"
        return ""

    db.insert("supplier", (
        (k,
         f"Supplier#{k:09d}",
         _address(rng),
         rng.randrange(25),
         _phone(rng),
         _balance(rng),
         supplier_comment())
        for k in range(1, supplier_count + 1)))

    db.insert("customer", (
        (k,
         f"Customer#{k:09d}",
         _address(rng),
         rng.randrange(25),
         _phone(rng),
         _balance(rng),
         rng.choice(_SEGMENTS),
         "")
        for k in range(1, customer_count + 1)))

    retail_prices = {}
    part_rows = []
    for k in range(1, part_count + 1):
        retail = round((90000 + (k % 200001) / 10.0 + 100 * (k % 1000))
                       / 100.0, 2)
        retail_prices[k] = retail
        part_rows.append((
            k,
            " ".join(rng.sample(_NAME_WORDS, 5)),
            f"Manufacturer#{rng.randint(1, 5)}",
            f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
            f"{rng.choice(_TYPE_SYLL1)} {rng.choice(_TYPE_SYLL2)} "
            f"{rng.choice(_TYPE_SYLL3)}",
            rng.randint(1, 50),
            f"{rng.choice(_CONTAINER_SIZES)} {rng.choice(_CONTAINER_KINDS)}",
            retail,
            ""))
    db.insert("part", part_rows)

    # 4 suppliers per part, dbgen's arithmetic progression.
    partsupp_rows = []
    suppliers_of: dict[int, list[int]] = {}
    for pk in range(1, part_count + 1):
        supps = []
        for i in range(4):
            sk = ((pk + i * ((supplier_count // 4) + 1)) % supplier_count) + 1
            supps.append(sk)
            partsupp_rows.append((
                pk, sk, rng.randint(1, 9999),
                round(rng.uniform(1.0, 1000.0), 2), ""))
        suppliers_of[pk] = supps
    db.insert("partsupp", partsupp_rows)

    order_rows = []
    lineitem_rows = []
    lineitem_count = 0
    order_key = 0
    for _ in range(order_count):
        order_key += 1
        # dbgen rule: a third of customers never place orders (custkeys
        # divisible by three are skipped) — this is what gives TPC-H Q22
        # its non-empty anti-join result.
        while True:
            custkey = rng.randint(1, customer_count)
            if custkey % 3 != 0:
                break
        orderdate = _BASE_DATE + datetime.timedelta(
            days=rng.randrange(_DATE_SPAN_DAYS - 151))
        line_count = rng.randint(1, 7)
        total = 0.0
        for line_number in range(1, line_count + 1):
            partkey = rng.randint(1, part_count)
            suppkey = rng.choice(suppliers_of[partkey])
            quantity = float(rng.randint(1, 50))
            extended = round(quantity * retail_prices[partkey], 2)
            discount = rng.randint(0, 10) / 100.0
            tax = rng.randint(0, 8) / 100.0
            shipdate = orderdate + datetime.timedelta(
                days=rng.randint(1, 121))
            commitdate = orderdate + datetime.timedelta(
                days=rng.randint(30, 90))
            receiptdate = shipdate + datetime.timedelta(
                days=rng.randint(1, 30))
            returnflag = (rng.choice("RA")
                          if receiptdate <= datetime.date(1995, 6, 17)
                          else "N")
            linestatus = "F" if shipdate <= datetime.date(1995, 6, 17) \
                else "O"
            lineitem_rows.append((
                order_key, partkey, suppkey, line_number, quantity,
                extended, discount, tax, returnflag, linestatus,
                shipdate, commitdate, receiptdate,
                rng.choice(_INSTRUCTS), rng.choice(_SHIPMODES), ""))
            total += extended * (1 + tax) * (1 - discount)
            lineitem_count += 1
        # dbgen plants "special ... requests" in a small fraction of order
        # comments — the needle TPC-H Q13's NOT LIKE filter looks for.
        comment = ""
        if rng.random() < 0.02:
            comment = f"{rng.choice(_NAME_WORDS)} special " \
                      f"{rng.choice(_NAME_WORDS)} requests"
        order_rows.append((
            order_key, custkey,
            "F" if orderdate < datetime.date(1995, 6, 17) else "O",
            round(total, 2), orderdate, rng.choice(_PRIORITIES),
            f"Clerk#{rng.randint(1, max(supplier_count, 1)):09d}", 0,
            comment))
    db.insert("orders", order_rows)
    db.insert("lineitem", lineitem_rows)

    return TpchCounts(
        region=len(_REGIONS), nation=len(_NATIONS),
        supplier=supplier_count, customer=customer_count,
        part=part_count, partsupp=len(partsupp_rows),
        orders=order_count, lineitem=lineitem_count)


def _address(rng: random.Random) -> str:
    return f"{rng.randint(1, 999)} {rng.choice(_NAME_WORDS)} st"


def _phone(rng: random.Random) -> str:
    return (f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-"
            f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}")


def _balance(rng: random.Random) -> float:
    return round(rng.uniform(-999.99, 9999.99), 2)
