"""dbgen ``.tbl`` file interchange.

The official TPC-H ``dbgen`` emits one ``<table>.tbl`` per table with
``|``-separated fields and a trailing ``|``.  ``load_tbl`` imports such
files into a :class:`~repro.Database` with the TPC-H schema (so the
reproduction can run against real dbgen output when available), and
``dump_tbl`` writes the same format back — used for round-trip testing and
for exporting generated data to other systems.
"""

from __future__ import annotations

import datetime
from pathlib import Path
from typing import Iterable, Optional

from ..algebra import DataType
from ..database import Database
from ..errors import ExecutionError
from .schema import TABLES


def load_tbl(db: Database, directory: str | Path,
             tables: Optional[Iterable[str]] = None) -> dict[str, int]:
    """Load ``<table>.tbl`` files from ``directory``.

    Returns the number of rows loaded per table.  Missing files are
    skipped (dbgen can emit subsets); malformed rows raise
    :class:`~repro.errors.ExecutionError` with the offending line number.
    """
    directory = Path(directory)
    counts: dict[str, int] = {}
    for name in tables if tables is not None else TABLES:
        path = directory / f"{name}.tbl"
        if not path.exists():
            continue
        dtypes = [dtype for _, dtype, *_ in TABLES[name]["columns"]]
        rows = []
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                fields = line.split("|")
                if fields and fields[-1] == "":
                    fields = fields[:-1]  # trailing separator
                if len(fields) != len(dtypes):
                    raise ExecutionError(
                        f"{path.name}:{line_number}: expected "
                        f"{len(dtypes)} fields, found {len(fields)}")
                try:
                    rows.append(tuple(
                        _parse_field(field, dtype)
                        for field, dtype in zip(fields, dtypes)))
                except ValueError as error:
                    raise ExecutionError(
                        f"{path.name}:{line_number}: {error}") from None
        counts[name] = db.insert(name, rows)
    return counts


def dump_tbl(db: Database, directory: str | Path,
             tables: Optional[Iterable[str]] = None) -> dict[str, int]:
    """Write ``<table>.tbl`` files in dbgen format."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts: dict[str, int] = {}
    for name in tables if tables is not None else TABLES:
        stored = db.storage.get(name)
        path = directory / f"{name}.tbl"
        with open(path, "w", encoding="utf-8") as handle:
            for row in stored.rows:
                handle.write("|".join(_format_field(v) for v in row))
                handle.write("|\n")
        counts[name] = len(stored.rows)
    return counts


def _parse_field(text: str, dtype: DataType):
    if text == "" and dtype is not DataType.VARCHAR:
        return None
    if dtype is DataType.INTEGER:
        return int(text)
    if dtype in (DataType.FLOAT, DataType.DECIMAL):
        return float(text)
    if dtype is DataType.DATE:
        return datetime.date.fromisoformat(text)
    return text


def _format_field(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        # dbgen uses two decimals; fall back to full precision when the
        # value genuinely carries more (keeps dump/load an exact
        # round trip).
        if round(value, 2) == value:
            return f"{value:.2f}"
        return repr(value)
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)
