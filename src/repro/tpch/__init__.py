"""TPC-H substrate: schema, dbgen-style generator, and query texts."""

from .datagen import TpchCounts, generate_tpch
from .loader import dump_tbl, load_tbl
from .queries import PAPER_HIGHLIGHT, QUERIES, paper_example_formulations
from .schema import FK_INDEXES, TABLES, create_tpch_schema

__all__ = ["FK_INDEXES", "PAPER_HIGHLIGHT", "QUERIES", "TABLES",
           "TpchCounts", "create_tpch_schema", "dump_tbl", "generate_tpch",
           "load_tbl", "paper_example_formulations"]
