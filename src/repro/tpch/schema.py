"""TPC-H schema (the paper's evaluation workload).

All eight tables with their standard columns (comment fields carried but
kept short by the generator), primary keys, and the index set TPC-H
permits: primary keys plus foreign-key columns.  The paper notes "TPC-H
has strict rules on what indices are allowed, reducing the relative impact
of physical database design" — we declare exactly the key/FK indexes.
"""

from __future__ import annotations

from ..algebra import DataType
from ..database import Database

I = DataType.INTEGER
F = DataType.FLOAT
S = DataType.VARCHAR
D = DataType.DATE


TABLES = {
    "region": dict(
        columns=[("r_regionkey", I, False), ("r_name", S, False),
                 ("r_comment", S, True)],
        primary_key=("r_regionkey",)),
    "nation": dict(
        columns=[("n_nationkey", I, False), ("n_name", S, False),
                 ("n_regionkey", I, False), ("n_comment", S, True)],
        primary_key=("n_nationkey",)),
    "supplier": dict(
        columns=[("s_suppkey", I, False), ("s_name", S, False),
                 ("s_address", S, False), ("s_nationkey", I, False),
                 ("s_phone", S, False), ("s_acctbal", F, False),
                 ("s_comment", S, True)],
        primary_key=("s_suppkey",)),
    "customer": dict(
        columns=[("c_custkey", I, False), ("c_name", S, False),
                 ("c_address", S, False), ("c_nationkey", I, False),
                 ("c_phone", S, False), ("c_acctbal", F, False),
                 ("c_mktsegment", S, False), ("c_comment", S, True)],
        primary_key=("c_custkey",)),
    "part": dict(
        columns=[("p_partkey", I, False), ("p_name", S, False),
                 ("p_mfgr", S, False), ("p_brand", S, False),
                 ("p_type", S, False), ("p_size", I, False),
                 ("p_container", S, False), ("p_retailprice", F, False),
                 ("p_comment", S, True)],
        primary_key=("p_partkey",)),
    "partsupp": dict(
        columns=[("ps_partkey", I, False), ("ps_suppkey", I, False),
                 ("ps_availqty", I, False), ("ps_supplycost", F, False),
                 ("ps_comment", S, True)],
        primary_key=("ps_partkey", "ps_suppkey")),
    "orders": dict(
        columns=[("o_orderkey", I, False), ("o_custkey", I, False),
                 ("o_orderstatus", S, False), ("o_totalprice", F, False),
                 ("o_orderdate", D, False), ("o_orderpriority", S, False),
                 ("o_clerk", S, False), ("o_shippriority", I, False),
                 ("o_comment", S, True)],
        primary_key=("o_orderkey",)),
    "lineitem": dict(
        columns=[("l_orderkey", I, False), ("l_partkey", I, False),
                 ("l_suppkey", I, False), ("l_linenumber", I, False),
                 ("l_quantity", F, False), ("l_extendedprice", F, False),
                 ("l_discount", F, False), ("l_tax", F, False),
                 ("l_returnflag", S, False), ("l_linestatus", S, False),
                 ("l_shipdate", D, False), ("l_commitdate", D, False),
                 ("l_receiptdate", D, False), ("l_shipinstruct", S, False),
                 ("l_shipmode", S, False), ("l_comment", S, True)],
        primary_key=("l_orderkey", "l_linenumber")),
}

#: Foreign-key indexes TPC-H implementations typically declare.
FK_INDEXES = [
    ("ix_nation_region", "nation", ("n_regionkey",)),
    ("ix_supplier_nation", "supplier", ("s_nationkey",)),
    ("ix_customer_nation", "customer", ("c_nationkey",)),
    ("ix_partsupp_supp", "partsupp", ("ps_suppkey",)),
    ("ix_orders_cust", "orders", ("o_custkey",)),
    ("ix_lineitem_part", "lineitem", ("l_partkey",)),
    ("ix_lineitem_supp", "lineitem", ("l_suppkey",)),
    ("ix_lineitem_order", "lineitem", ("l_orderkey",)),
    ("ix_lineitem_partsupp", "lineitem", ("l_partkey", "l_suppkey")),
]


def create_tpch_schema(db: Database, with_indexes: bool = True) -> None:
    """Create the eight TPC-H tables (and FK indexes) in ``db``."""
    for name, spec in TABLES.items():
        db.create_table(name, spec["columns"],
                        primary_key=spec["primary_key"])
    if with_indexes:
        for index_name, table_name, columns in FK_INDEXES:
            db.create_index(index_name, table_name, columns)
