"""Runtime cardinality feedback: Q-error tracking and plan re-optimization.

The cost model estimates; execution knows.  This module closes the loop
between them:

* executors count actual rows produced per plan node (``profile`` dicts,
  see the engines' ``run_prepared``);
* :func:`collect` joins those counts against the estimates the optimizer
  stamped on the plan (``PhysicalOp.estimated_rows``) and computes the
  per-node **Q-error** — ``max(estimated / actual, actual / estimated)``
  with both sides floored at one row, the standard symmetric measure of
  cardinality misestimation;
* :class:`FeedbackLoop.record` persists *corrections* (observed
  cardinalities for filter-over-scan shapes) into the catalog's
  :class:`~repro.catalog.statistics.CorrectionStore` and flags the cached
  plan stale when its max Q-error exceeds the configurable threshold, so
  the next execution re-optimizes against the corrected statistics.

Feedback must never fail a query: :meth:`FeedbackLoop.record` absorbs the
``feedback.record`` chaos fault (and only that) by dropping the
observation, which the ``dropped`` counter makes visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from . import faultinject
from .catalog.statistics import CardinalityCorrection, CorrectionStore
from .concurrency import TrackedLock
from .core.optimizer.cardinality import predicate_fingerprint
from .errors import InjectedFault
from .physical.plan import PFilter, PTableScan
from .stats_version import capture

#: A cached plan whose observed max Q-error exceeds this is flagged stale
#: and replanned on its next lookup.  4 means "off by more than 4x in
#: either direction": large enough that ordinary estimation noise never
#: thrashes the cache, small enough that a skew-induced misestimate (the
#: drift benchmark's is in the hundreds) trips it immediately.
DEFAULT_Q_ERROR_THRESHOLD = 4.0

#: Corrections are only persisted for nodes at least this wrong —
#: near-accurate estimates do not need overriding.
MIN_CORRECTION_Q_ERROR = 2.0


def q_error(estimated: float, actual: float) -> float:
    """Symmetric ratio error, floored at one row on both sides (so an
    estimate of 0.04 rows against an actual 0 is a perfect 1.0, not an
    infinity)."""
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return est / act if est >= act else act / est


@dataclass(frozen=True)
class NodeFeedback:
    """Estimated vs. actual output cardinality of one plan node."""

    label: str
    estimated_rows: Optional[float]
    actual_rows: Optional[int]
    q_error: Optional[float]


@dataclass(frozen=True)
class PlanFeedback:
    """One execution's worth of per-node feedback."""

    nodes: tuple
    max_q_error: float


def collect(plan: Any, profile: Dict[Any, int]) -> PlanFeedback:
    """Join a plan tree against an execution profile.

    Works on physical plans (``estimated_rows`` attribute) and, with
    ``estimated_rows`` absent, on logical trees (every node then reports
    actuals only).  Nodes the profile never saw (e.g. the guarded inner
    side of an NLApply that never opened) report ``actual_rows=None``.
    """
    nodes: List[NodeFeedback] = []
    worst = 1.0

    def visit(node: Any) -> None:
        nonlocal worst
        estimated = getattr(node, "estimated_rows", None)
        actual = profile.get(id(node))
        q: Optional[float] = None
        if estimated is not None and actual is not None:
            q = q_error(estimated, actual)
            worst = max(worst, q)
        nodes.append(NodeFeedback(node.label(), estimated, actual, q))
        for child in node.children:
            visit(child)

    visit(plan)
    return PlanFeedback(tuple(nodes), worst)


def tree_dict(node: Any, profile: Optional[Dict[Any, int]] = None,
              estimates: Optional[Dict[int, float]] = None) -> dict:
    """The EXPLAIN [ANALYZE] tree as nested dicts with frozen keys.

    ``op``/``estimated_rows``/``actual_rows``/``q_error``/``children``
    are the wire-visible names — the server's explain op and
    ``Database.explain(format="dict")`` both emit this verbatim.
    Estimates come from the node's own ``estimated_rows`` when present
    (physical plans) or from the ``estimates`` side table keyed by node
    identity (logical trees, whose nodes carry no estimate attribute).

    A scan node that zone-map-pruned chunks additionally carries
    ``chunks_skipped``; the key is emitted only when at least one chunk
    was skipped so the frozen key set above stays exact everywhere else.
    """
    estimated = getattr(node, "estimated_rows", None)
    if estimated is None and estimates is not None:
        estimated = estimates.get(id(node))
    actual = profile.get(id(node)) if profile is not None else None
    q: Optional[float] = None
    if estimated is not None and actual is not None:
        q = q_error(estimated, actual)
    out = {"op": node.label(),
           "estimated_rows": estimated,
           "actual_rows": actual,
           "q_error": q,
           "children": [tree_dict(child, profile, estimates)
                        for child in node.children]}
    if profile is not None:
        skipped = profile.get(("chunks_skipped", id(node)))
        if skipped:
            out["chunks_skipped"] = skipped
    return out


def render_tree(tree: dict) -> str:
    """Text form of a :func:`tree_dict` tree: one node per line, indented
    two spaces per level, annotations appended where known."""
    lines: List[str] = []

    def visit(node: dict, depth: int) -> None:
        notes = []
        if node["estimated_rows"] is not None:
            notes.append(f"est={node['estimated_rows']:.1f}")
        if node["actual_rows"] is not None:
            notes.append(f"actual={node['actual_rows']}")
        if node["q_error"] is not None:
            notes.append(f"q={node['q_error']:.2f}")
        if node.get("chunks_skipped") is not None:
            notes.append(f"skipped={node['chunks_skipped']}")
        suffix = f"  ({' '.join(notes)})" if notes else ""
        lines.append("  " * depth + node["op"] + suffix)
        for child in node["children"]:
            visit(child, depth + 1)

    visit(tree, 0)
    return "\n".join(lines)


def tree_max_q_error(tree: dict) -> Optional[float]:
    """Worst Q-error anywhere in a :func:`tree_dict` tree (None when no
    node had both an estimate and an actual count)."""
    worst = tree["q_error"]
    for child in tree["children"]:
        below = tree_max_q_error(child)
        if below is not None and (worst is None or below > worst):
            worst = below
    return worst


def _correction_sites(plan: Any) -> List[PFilter]:
    """Filter-over-scan nodes: the shapes corrections are keyed on.

    A ``PFilter`` directly over a ``PTableScan`` corresponds one-to-one
    with a logical ``Select`` over ``Get`` — the estimator's
    :meth:`~repro.core.optimizer.cardinality.Estimator._corrected_rows`
    hook matches exactly the same shape on the logical side.
    """
    found: List[PFilter] = []

    def visit(node: Any) -> None:
        if isinstance(node, PFilter) and isinstance(node.child, PTableScan):
            found.append(node)
        for child in node.children:
            visit(child)

    visit(plan)
    return found


class FeedbackLoop:
    """Owns the record path: observations in, corrections and staleness
    flags out.  Thread-safe; one instance per :class:`~repro.Database`.
    """

    def __init__(self, corrections: CorrectionStore,
                 row_count_of: Callable[[str], int],
                 q_error_threshold: float = DEFAULT_Q_ERROR_THRESHOLD,
                 min_correction_q_error: float = MIN_CORRECTION_Q_ERROR
                 ) -> None:
        if q_error_threshold < 1.0:
            raise ValueError("q_error_threshold must be at least 1.0")
        self.corrections = corrections
        self.q_error_threshold = q_error_threshold
        self.min_correction_q_error = min_correction_q_error
        self._row_count_of = row_count_of
        self._lock = TrackedLock("feedback.stats")
        #: observability counters (served through the wire ``metrics`` op)
        self.plans_recorded = 0
        self.corrections_recorded = 0
        self.plans_invalidated = 0
        self.dropped = 0

    def record(self, entry: Any,
               profile: Dict[Any, int]) -> Optional[PlanFeedback]:
        """Fold one execution's profile back into the optimizer's world.

        ``entry`` is the executed :class:`~repro.plancache.CachedPlan`.
        Persists corrections for misestimated filter-over-scan nodes and
        flags the entry stale when the plan's max Q-error exceeds the
        threshold.  Never raises on the chaos fault site — an injected
        ``feedback.record`` fault drops this observation (counted in
        ``dropped``) and the query result is untouched.
        """
        if entry.plan is None or not profile:
            return None
        try:
            faultinject.hit("feedback.record")
        except InjectedFault:
            with self._lock:
                self.dropped += 1
            return None
        feedback = collect(entry.plan, profile)
        recorded = 0
        for node in _correction_sites(entry.plan):
            estimated = node.estimated_rows
            actual = profile.get(id(node))
            if estimated is None or actual is None:
                continue
            if q_error(estimated, actual) < self.min_correction_q_error:
                continue
            table = node.child.table_name
            self.corrections.record(CardinalityCorrection(
                table=table,
                predicate_key=predicate_fingerprint(node.predicate),
                estimated_rows=float(estimated),
                actual_rows=int(actual),
                q_error=q_error(estimated, actual),
                snapshot=capture(self._row_count_of, [table])))
            recorded += 1
        invalidated = False
        if feedback.max_q_error > self.q_error_threshold and \
                not entry.feedback_stale:
            entry.feedback_stale = True
            invalidated = True
        with self._lock:
            self.plans_recorded += 1
            self.corrections_recorded += recorded
            if invalidated:
                self.plans_invalidated += 1
        return feedback

    def as_dict(self) -> dict:
        """Frozen-name counter snapshot for the server ``metrics`` op."""
        # Read the correction store *before* taking the stats lock:
        # len(corrections) acquires stats.corrections (level 55), which
        # sits below feedback.stats (92) in the lock hierarchy and must
        # therefore never be taken while the stats lock is held.
        stored = len(self.corrections)
        with self._lock:
            return {"plans_recorded": self.plans_recorded,
                    "corrections_recorded": self.corrections_recorded,
                    "plans_invalidated": self.plans_invalidated,
                    "dropped": self.dropped,
                    "q_error_threshold": self.q_error_threshold,
                    "corrections_stored": stored}
