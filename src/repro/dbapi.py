"""Minimal DB-API 2.0 (PEP 249) adapter over :class:`repro.Database`.

Lets standard database tooling talk to the engine::

    import repro.dbapi as dbapi

    conn = dbapi.connect()
    cur = conn.cursor()
    cur.execute("select a from t where a > ?", (1,))
    print(cur.fetchall())

Only the query subset of the spec is implemented (this engine has no
transactions: ``commit`` is a no-op and ``rollback`` raises).  Parameters
use the ``qmark`` style, matching the engine's native ``?`` markers.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from .database import Database, QueryResult
from .errors import ReproError

apilevel = "2.0"
threadsafety = 1  # threads may share the module, not connections
paramstyle = "qmark"


class Error(Exception):
    """Base of the PEP 249 exception hierarchy."""


class InterfaceError(Error):
    """Misuse of the interface itself (e.g. operating on a closed cursor)."""


class DatabaseError(Error):
    """Base for errors related to the database."""


class ProgrammingError(DatabaseError):
    """Bad SQL, unknown names, wrong parameter usage."""


class OperationalError(DatabaseError):
    """Errors during execution not caused by the statement text."""


class NotSupportedError(DatabaseError):
    """A requested feature the engine does not provide."""


def connect(database: Database | None = None) -> "Connection":
    """Open a connection; wraps an existing engine or creates a fresh one."""
    return Connection(database if database is not None else Database())


class Connection:
    """A PEP 249 connection: a cursor factory over one engine instance."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._closed = False

    @property
    def database(self) -> Database:
        """The underlying engine (for DDL and inserts, which PEP 249
        routes through ``cursor.execute`` in richer implementations)."""
        return self._database

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def commit(self) -> None:
        self._check_open()  # no transactions: every statement autocommits

    def rollback(self) -> None:
        self._check_open()
        raise NotSupportedError("this engine has no transactions")

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Cursor:
    """A PEP 249 cursor: executes statements and buffers their results."""

    arraysize = 1

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self._closed = False
        self._result: QueryResult | None = None
        self._position = 0

    # -- execution -------------------------------------------------------------

    def execute(self, operation: str,
                parameters: Sequence[Any] | Mapping[str, Any] = ()
                ) -> "Cursor":
        self._check_open()
        self.connection._check_open()
        try:
            self._result = self.connection.database.execute(
                operation, params=parameters or None)
        except ReproError as exc:
            raise ProgrammingError(str(exc)) from exc
        self._position = 0
        return self

    def executemany(self, operation: str,
                    seq_of_parameters: Sequence[Sequence[Any]]) -> "Cursor":
        for parameters in seq_of_parameters:
            self.execute(operation, parameters)
        return self

    # -- results ---------------------------------------------------------------

    @property
    def description(self) -> list[tuple] | None:
        """PEP 249 7-tuples: (name, type_code, None, None, None, None, None)."""
        if self._result is None:
            return None
        return [(name, dtype, None, None, None, None, None)
                for name, dtype in self._result.columns]

    @property
    def rowcount(self) -> int:
        return -1 if self._result is None else len(self._result.rows)

    def fetchone(self) -> tuple | None:
        rows = self._rows()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        rows = self._rows()
        count = self.arraysize if size is None else size
        chunk = rows[self._position:self._position + count]
        self._position += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple]:
        rows = self._rows()
        chunk = rows[self._position:]
        self._position = len(rows)
        return chunk

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._result = None

    def setinputsizes(self, sizes) -> None:
        pass  # optional per PEP 249

    def setoutputsize(self, size, column=None) -> None:
        pass  # optional per PEP 249

    def _rows(self) -> list[tuple]:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no result set; call execute() first")
        return self._result.rows

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
