"""DB-API 2.0 (PEP 249) adapter over :class:`repro.Database` sessions.

Lets standard database tooling talk to the engine::

    import repro.dbapi as dbapi

    conn = dbapi.connect()
    cur = conn.cursor()
    cur.execute("select a from t where a > ?", (1,))
    print(cur.fetchall())

Every connection wraps its own :class:`~repro.server.sessions.Session`,
so connections are independent and may be used from different threads
concurrently (``threadsafety = 2``: share the module and connections
across threads, but drive any single connection from one thread at a
time).  By default connections autocommit, matching the engine's
historical behaviour; pass ``autocommit=False`` to get implicit
transactions — the first statement begins one, and ``commit()`` /
``rollback()`` end it.  Parameters use the ``qmark`` style, matching the
engine's native ``?`` markers.

For services that churn through many short-lived connections, a small
:class:`ConnectionPool` hands out pooled connections mapped onto
long-lived sessions.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, Mapping, Optional, Sequence

from .concurrency import TrackedCondition
from .database import Database, QueryResult
from .errors import ReproError, TransactionError

apilevel = "2.0"
threadsafety = 2  # threads may share the module and connections
paramstyle = "qmark"


class Error(Exception):
    """Base of the PEP 249 exception hierarchy."""


class InterfaceError(Error):
    """Misuse of the interface itself (e.g. operating on a closed cursor)."""


class DatabaseError(Error):
    """Base for errors related to the database."""


class ProgrammingError(DatabaseError):
    """Bad SQL, unknown names, wrong parameter usage."""


class OperationalError(DatabaseError):
    """Errors during execution not caused by the statement text:
    transaction conflicts, lock timeouts, overload shedding."""


class NotSupportedError(DatabaseError):
    """A requested feature the engine does not provide."""


def connect(database: Database | None = None,
            autocommit: bool = True) -> "Connection":
    """Open a connection; wraps an existing engine or creates a fresh one.

    With ``autocommit=False`` the connection runs implicit transactions:
    the first statement after ``connect``/``commit``/``rollback`` begins
    one, and only ``commit()`` makes its writes visible to other
    connections.
    """
    return Connection(database if database is not None else Database(),
                      autocommit=autocommit)


class Connection:
    """A PEP 249 connection: one session on the engine, plus cursors."""

    def __init__(self, database: Database, autocommit: bool = True) -> None:
        self._database = database
        self._session = database.session()
        self.autocommit = autocommit
        self._closed = False

    @property
    def database(self) -> Database:
        """The underlying engine (for DDL and inserts, which PEP 249
        routes through ``cursor.execute`` in richer implementations)."""
        return self._database

    @property
    def session(self):
        """The underlying :class:`~repro.server.sessions.Session`."""
        return self._session

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def commit(self) -> None:
        """Commit the implicit transaction (a no-op in autocommit mode
        or when no statement has run yet)."""
        self._check_open()
        if self._session.in_transaction:
            try:
                self._session.commit()
            except TransactionError as exc:
                raise OperationalError(str(exc)) from exc

    def rollback(self) -> None:
        """Discard the implicit transaction's writes (no-op when none
        is open)."""
        self._check_open()
        self._session.rollback()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._session.close()  # rolls back any open transaction

    def _ensure_transaction(self) -> None:
        if not self.autocommit and not self._session.in_transaction:
            self._session.begin()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Cursor:
    """A PEP 249 cursor: executes statements and buffers their results."""

    arraysize = 1

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self._closed = False
        self._result: QueryResult | None = None
        self._position = 0

    # -- execution -------------------------------------------------------------

    def execute(self, operation: str,
                parameters: Sequence[Any] | Mapping[str, Any] = ()
                ) -> "Cursor":
        self._check_open()
        self.connection._check_open()
        self.connection._ensure_transaction()
        try:
            self._result = self.connection._session.execute(
                operation, params=parameters or None)
        except TransactionError as exc:
            raise OperationalError(str(exc)) from exc
        except ReproError as exc:
            raise ProgrammingError(str(exc)) from exc
        self._position = 0
        return self

    def executemany(self, operation: str,
                    seq_of_parameters: Sequence[Sequence[Any]]) -> "Cursor":
        for parameters in seq_of_parameters:
            self.execute(operation, parameters)
        return self

    # -- results ---------------------------------------------------------------

    @property
    def description(self) -> list[tuple] | None:
        """PEP 249 7-tuples: (name, type_code, None, None, None, None, None)."""
        if self._result is None:
            return None
        return [(name, dtype, None, None, None, None, None)
                for name, dtype in self._result.columns]

    @property
    def rowcount(self) -> int:
        return -1 if self._result is None else len(self._result.rows)

    def fetchone(self) -> tuple | None:
        rows = self._rows()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        rows = self._rows()
        count = self.arraysize if size is None else size
        chunk = rows[self._position:self._position + count]
        self._position += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple]:
        rows = self._rows()
        chunk = rows[self._position:]
        self._position = len(rows)
        return chunk

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._result = None

    def setinputsizes(self, sizes) -> None:
        pass  # optional per PEP 249

    def setoutputsize(self, size, column=None) -> None:
        pass  # optional per PEP 249

    def _rows(self) -> list[tuple]:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no result set; call execute() first")
        return self._result.rows

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")


class ConnectionPool:
    """A small fixed pool of connections onto one shared engine.

    ::

        pool = ConnectionPool(db, size=4)
        with pool.connection() as conn:
            conn.cursor().execute("select 1 from t")

    ``acquire`` blocks until a connection is free (or raises
    :class:`OperationalError` after ``timeout`` seconds); ``release``
    rolls back any open transaction before returning the connection, so
    the next borrower never inherits another's transaction state.
    """

    def __init__(self, database: Database | None = None, size: int = 4,
                 autocommit: bool = True) -> None:
        if size < 1:
            raise ValueError("pool size must be at least 1")
        self._database = database if database is not None else Database()
        self.size = size
        self._cv = TrackedCondition("dbapi.pool")
        self._free: deque[Connection] = deque(
            Connection(self._database, autocommit=autocommit)
            for _ in range(size))
        self._closed = False

    @property
    def database(self) -> Database:
        return self._database

    def acquire(self, timeout: Optional[float] = None) -> Connection:
        with self._cv:
            if self._closed:
                raise InterfaceError("pool is closed")
            if not self._cv.wait_for(lambda: self._free or self._closed,
                                     timeout=timeout):
                raise OperationalError(
                    f"no pooled connection became free within {timeout}s")
            if self._closed:
                raise InterfaceError("pool is closed")
            return self._free.popleft()

    def release(self, connection: Connection) -> None:
        if connection._closed:
            # A borrower closed the connection; replace it to keep the
            # pool at full strength.
            connection = Connection(self._database,
                                    autocommit=connection.autocommit)
        else:
            connection.rollback()
        with self._cv:
            if not self._closed:
                self._free.append(connection)
                self._cv.notify()
                return
        connection.close()

    def connection(self, timeout: Optional[float] = None):
        """Borrow a connection for a ``with`` block."""
        return _PooledConnection(self, timeout)

    def close(self) -> None:
        with self._cv:
            self._closed = True
            doomed = list(self._free)
            self._free.clear()
            self._cv.notify_all()
        for connection in doomed:
            connection.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _PooledConnection:
    """Context manager pairing ``acquire`` with ``release``."""

    def __init__(self, pool: ConnectionPool,
                 timeout: Optional[float]) -> None:
        self._pool = pool
        self._timeout = timeout
        self._conn: Connection | None = None

    def __enter__(self) -> Connection:
        self._conn = self._pool.acquire(self._timeout)
        return self._conn

    def __exit__(self, *exc_info) -> None:
        if self._conn is not None:
            self._pool.release(self._conn)
            self._conn = None
