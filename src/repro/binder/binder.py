"""The binder (algebrizer): SQL AST → operator tree.

This implements paper Section 2.1 — "the parser/algebrizer takes the SQL
formulation and generates an operator tree, which contains both relational
and scalar operators".  Subqueries become *relational-valued scalar nodes*
(``ScalarSubquery`` / ``ExistsSubquery`` / ``InSubquery`` /
``QuantifiedComparison``) embedded in predicates and projections: the
mutually recursive Figure 3 form.  No decorrelation happens here; that is
normalization's job (:mod:`repro.core.normalize`).

Responsibilities: name resolution (including correlation through scope
chains), star expansion, GROUP BY/HAVING semantics (non-aggregated output
columns must be grouping columns), DISTINCT as GroupBy (paper footnote 1),
scalar-subquery cardinality checks with Max1row insertion and key-based
elision (Section 2.4), and light type checking.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Optional

from ..algebra import (AggregateCall, AggregateFunction, And, Arithmetic,
                       Case, Column, ColumnRef, Comparison, ConstantScan,
                       DataType, ExistsSubquery, Get, GroupBy, InList,
                       InSubquery, Interval, IsNull, Join, JoinKind, Like,
                       Literal, Max1row, Negate, Not, Or, Parameter,
                       Project, QuantifiedComparison, RelationalOp,
                       ScalarExpr, ScalarGroupBy, ScalarSubquery, Select,
                       Sort, Top, UnionAll, conjunction, max_one_row)
from ..catalog import Catalog, TableDef
from ..errors import BindError
from ..sql import ast
from .scope import Scope

_AGGREGATE_FUNCS = {
    "count": AggregateFunction.COUNT,
    "sum": AggregateFunction.SUM,
    "avg": AggregateFunction.AVG,
    "min": AggregateFunction.MIN,
    "max": AggregateFunction.MAX,
}


@dataclass
class BoundQuery:
    """A bound query: operator tree plus output column names.

    ``parameters`` lists the query's parameter markers in slot order
    (empty for non-parameterized queries); it is filled in by
    :meth:`Binder.bind` on the top-level result only.
    """

    rel: RelationalOp
    names: list[str]
    parameters: tuple[Parameter, ...] = ()

    @property
    def columns(self) -> list[Column]:
        return self.rel.output_columns()

    @property
    def column_types(self) -> list[DataType]:
        return [c.dtype for c in self.columns]


class Binder:
    """Binds SQL ASTs against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._view_stack: list[str] = []
        self._parameters: dict[int, Parameter] = {}

    def bind(self, query: ast.Query) -> BoundQuery:
        self._parameters = {}
        bound = self._bind_query(query, parent_scope=None)
        bound.parameters = tuple(self._parameters[i]
                                 for i in sorted(self._parameters))
        return bound

    # -- queries ------------------------------------------------------------------

    def _bind_query(self, query: ast.Query,
                    parent_scope: Optional[Scope]) -> BoundQuery:
        if isinstance(query, ast.UnionStatement):
            return self._bind_union(query, parent_scope)
        if isinstance(query, ast.ExceptStatement):
            return self._bind_except(query, parent_scope)
        return self._bind_select(query, parent_scope)

    def _bind_except(self, query: ast.ExceptStatement,
                     parent_scope: Optional[Scope]) -> BoundQuery:
        from ..algebra import Difference

        left = self._bind_query(query.left, parent_scope)
        right = self._bind_query(query.right, parent_scope)
        if len(left.columns) != len(right.columns):
            raise BindError(
                f"EXCEPT ALL inputs have different widths "
                f"({len(left.columns)} vs {len(right.columns)})")
        difference = Difference.from_inputs(left.rel, right.rel)
        return BoundQuery(difference, list(left.names))

    def _bind_union(self, query: ast.UnionStatement,
                    parent_scope: Optional[Scope]) -> BoundQuery:
        left = self._bind_query(query.left, parent_scope)
        right = self._bind_query(query.right, parent_scope)
        if len(left.columns) != len(right.columns):
            raise BindError(
                f"UNION ALL inputs have different widths "
                f"({len(left.columns)} vs {len(right.columns)})")
        union = UnionAll.from_inputs([left.rel, right.rel])
        return BoundQuery(union, list(left.names))

    def _bind_select(self, stmt: ast.SelectStatement,
                     parent_scope: Optional[Scope]) -> BoundQuery:
        scope = Scope(parent_scope)

        # FROM --------------------------------------------------------------
        rel = self._bind_from(stmt.from_items, scope)

        # WHERE --------------------------------------------------------------
        if stmt.where is not None:
            if _contains_aggregate_call(stmt.where):
                raise BindError("aggregates are not allowed in WHERE")
            predicate = self._bind_expr(stmt.where, scope)
            self._require_boolean(predicate, "WHERE")
            rel = Select(rel, predicate)

        # Aggregation ----------------------------------------------------------
        has_aggregates = (
            any(_contains_aggregate_call(item.expr)
                for item in stmt.select_items)
            or (stmt.having is not None
                and _contains_aggregate_call(stmt.having))
            or any(_contains_aggregate_call(o.expr) for o in stmt.order_by))
        grouped = bool(stmt.group_by) or has_aggregates

        if grouped:
            rel, group_map, agg_map = self._bind_groupby(stmt, rel, scope)
            bind_output = lambda e: self._bind_grouped_expr(  # noqa: E731
                e, scope, group_map, agg_map)
        else:
            group_map, agg_map = {}, {}
            bind_output = lambda e: self._bind_expr(e, scope)  # noqa: E731

        # HAVING --------------------------------------------------------------
        if stmt.having is not None:
            if not grouped:
                raise BindError("HAVING requires GROUP BY or aggregates")
            having = bind_output(stmt.having)
            self._require_boolean(having, "HAVING")
            rel = Select(rel, having)

        # SELECT list -----------------------------------------------------------
        items: list[tuple[Column, ScalarExpr]] = []
        names: list[str] = []
        for item in stmt.select_items:
            if isinstance(item.expr, ast.Star):
                if grouped:
                    raise BindError("SELECT * cannot be combined with "
                                    "GROUP BY or aggregates")
                for alias, name, column in self._star_columns(
                        item.expr, scope):
                    items.append((column, ColumnRef(column)))
                    names.append(name)
                continue
            expr = bind_output(item.expr)
            name = item.alias or _derive_name(item.expr, len(names))
            if isinstance(expr, ColumnRef):
                items.append((expr.column, expr))
            else:
                out = Column(name, expr.dtype, expr.nullable)
                items.append((out, expr))
            names.append(name)

        # ORDER BY binds against select aliases first, then the input.
        sort_keys: list[tuple[ScalarExpr, bool]] = []
        for order in stmt.order_by:
            expr = self._bind_order_expr(order.expr, stmt, items, names,
                                         bind_output)
            sort_keys.append((expr, order.ascending))

        # Sort keys may reference input columns that are not projected
        # (SQL allows ordering by unselected columns); carry them through
        # as hidden columns and trim after the Sort.
        visible_ids = {c.cid for c, _ in items}
        input_ids = {c.cid for c in rel.output_columns()}
        hidden: list[Column] = []
        for expr, _ in sort_keys:
            for column in expr.free_columns():
                if column.cid not in visible_ids \
                        and column.cid in input_ids:
                    hidden.append(column)
                    visible_ids.add(column.cid)
        if hidden and stmt.distinct:
            raise BindError("ORDER BY on a DISTINCT query may only use "
                            "selected columns")

        project_items = items + [(c, ColumnRef(c)) for c in hidden]
        rel = Project(rel, project_items)
        names_out = list(names)

        if stmt.distinct:
            # DISTINCT is a vector aggregate with no aggregate functions
            # (paper footnote 1).
            rel = GroupBy(rel, rel.output_columns(), [])

        if sort_keys:
            rel = Sort(rel, sort_keys)
        if stmt.limit is not None:
            rel = Top(rel, stmt.limit, stmt.offset)
        if hidden:
            rel = Project.passthrough(rel, [c for c, _ in items])
        return BoundQuery(rel, names_out)

    def _bind_order_expr(self, expr: ast.Expr, stmt: ast.SelectStatement,
                         items: list[tuple[Column, ScalarExpr]],
                         names: list[str], bind_output) -> ScalarExpr:
        # ORDER BY <ordinal> refers to the select-list position (SQL-92).
        if isinstance(expr, ast.NumberLiteral) and "." not in expr.text:
            position = int(expr.text)
            if not 1 <= position <= len(items):
                raise BindError(
                    f"ORDER BY position {position} is out of range "
                    f"(1..{len(items)})")
            return ColumnRef(items[position - 1][0])
        # A bare identifier that matches a select alias refers to that item.
        if isinstance(expr, ast.Identifier) and len(expr.parts) == 1:
            name = expr.parts[0].lower()
            matches = [i for i, n in enumerate(names) if n == name]
            if len(matches) == 1:
                return ColumnRef(items[matches[0]][0])
            if len(matches) > 1:
                raise BindError(f"ambiguous ORDER BY name {name!r}")
        # Structural match against a select item's AST.
        for item, (column, _) in zip(stmt.select_items, items):
            if item.expr == expr:
                return ColumnRef(column)
        return bind_output(expr)

    # -- FROM --------------------------------------------------------------------

    def _bind_from(self, from_items: tuple[ast.TableExpr, ...],
                   scope: Scope) -> RelationalOp:
        if not from_items:
            return ConstantScan([], [()])
        rel = self._bind_table_expr(from_items[0], scope)
        for item in from_items[1:]:
            right = self._bind_table_expr(item, scope)
            rel = Join.cross(rel, right)
        return rel

    def _bind_table_expr(self, item: ast.TableExpr,
                         scope: Scope) -> RelationalOp:
        if isinstance(item, ast.TableRef):
            if self.catalog.has_view(item.name):
                return self._bind_view(item, scope)
            table = self.catalog.get_table(item.name)
            get = make_get(table)
            columns = {c.name: col
                       for c, col in zip(table.columns, get.columns)}
            scope.add_relation(item.binding_name, columns)
            return get

        if isinstance(item, ast.DerivedTable):
            bound = self._bind_query(item.subquery, scope.parent)
            names = list(bound.names)
            if item.column_aliases is not None:
                if len(item.column_aliases) != len(names):
                    raise BindError(
                        f"derived table {item.alias!r} has "
                        f"{len(names)} columns but "
                        f"{len(item.column_aliases)} aliases")
                names = list(item.column_aliases)
            lowered = [n.lower() for n in names]
            if len(set(lowered)) != len(lowered):
                raise BindError(
                    f"duplicate column names in derived table {item.alias!r};"
                    " add column aliases")
            columns = dict(zip(lowered, bound.columns))
            scope.add_relation(item.alias, columns)
            return bound.rel

        if isinstance(item, ast.JoinExpr):
            left = self._bind_table_expr(item.left, scope)
            right = self._bind_table_expr(item.right, scope)
            if item.kind == "cross":
                return Join.cross(left, right)
            condition = self._bind_expr(item.condition, scope)
            self._require_boolean(condition, "JOIN ON")
            kind = JoinKind.INNER if item.kind == "inner" else JoinKind.LEFT_OUTER
            return Join(kind, left, right, condition)

        raise BindError(f"unsupported FROM item {type(item).__name__}")

    def _bind_view(self, item: ast.TableRef, scope: Scope) -> RelationalOp:
        """Expand a view reference: bind its defining query in a fresh
        scope (views cannot be correlated) under the reference's alias."""
        from ..sql import parse

        key = item.name.lower()
        if key in self._view_stack:
            chain = " -> ".join(self._view_stack + [key])
            raise BindError(f"recursive view definition: {chain}")
        self._view_stack.append(key)
        try:
            definition = parse(self.catalog.view_definition(item.name))
            bound = self._bind_query(definition, parent_scope=None)
        finally:
            self._view_stack.pop()
        lowered = [n.lower() for n in bound.names]
        if len(set(lowered)) != len(lowered):
            raise BindError(
                f"view {item.name!r} has duplicate output names; "
                "alias its columns")
        scope.add_relation(item.binding_name,
                           dict(zip(lowered, bound.columns)))
        return bound.rel

    def _star_columns(self, star: ast.Star, scope: Scope):
        if star.qualifier is not None:
            columns = scope.relation_columns(star.qualifier)
            return [(star.qualifier, name, col)
                    for name, col in columns.items()]
        return scope.all_columns()

    # -- GROUP BY ------------------------------------------------------------------

    def _bind_groupby(self, stmt: ast.SelectStatement, rel: RelationalOp,
                      scope: Scope):
        """Build the GroupBy operator; returns (rel, group_map, agg_map).

        ``group_map`` maps group-by ASTs to their grouping columns;
        ``agg_map`` maps aggregate-call ASTs to their output columns.
        """
        group_map: dict[ast.Expr, Column] = {}
        group_columns: list[Column] = []
        computed: list[tuple[Column, ScalarExpr]] = []
        for g_ast in stmt.group_by:
            expr = self._bind_expr(g_ast, scope)
            if _contains_aggregate_call(g_ast):
                raise BindError("aggregates are not allowed in GROUP BY")
            if isinstance(expr, ColumnRef):
                column = expr.column
            else:
                column = Column(_derive_name(g_ast, len(computed)),
                                expr.dtype, expr.nullable)
                computed.append((column, expr))
            group_map[g_ast] = column
            group_columns.append(column)
        if computed:
            rel = Project.extend(rel, computed)

        agg_asts: list[ast.FunctionCall] = []
        for item in stmt.select_items:
            _collect_aggregate_calls(item.expr, agg_asts)
        if stmt.having is not None:
            _collect_aggregate_calls(stmt.having, agg_asts)
        for order in stmt.order_by:
            _collect_aggregate_calls(order.expr, agg_asts)

        agg_map: dict[ast.FunctionCall, Column] = {}
        aggregates: list[tuple[Column, AggregateCall]] = []
        for call_ast in agg_asts:
            if call_ast in agg_map:
                continue
            call = self._bind_aggregate(call_ast, scope)
            out = Column(call_ast.name, call.dtype, call.nullable)
            agg_map[call_ast] = out
            aggregates.append((out, call))

        if group_columns:
            rel = GroupBy(rel, group_columns, aggregates)
        else:
            rel = ScalarGroupBy(rel, aggregates)
        return rel, group_map, agg_map

    def _bind_aggregate(self, call: ast.FunctionCall,
                        scope: Scope) -> AggregateCall:
        func = _AGGREGATE_FUNCS[call.name]
        if len(call.args) != 1:
            raise BindError(f"{call.name} takes exactly one argument")
        (arg_ast,) = call.args
        if isinstance(arg_ast, ast.Star):
            if func is not AggregateFunction.COUNT:
                raise BindError(f"{call.name}(*) is not valid")
            if call.distinct:
                raise BindError("count(distinct *) is not valid")
            return AggregateCall(AggregateFunction.COUNT_STAR)
        if _contains_aggregate_call(arg_ast):
            raise BindError("aggregates cannot be nested")
        argument = self._bind_expr(arg_ast, scope)
        if func in (AggregateFunction.SUM, AggregateFunction.AVG) \
                and not argument.dtype.is_numeric \
                and argument.dtype is not DataType.UNKNOWN:
            raise BindError(f"{call.name} requires a numeric argument")
        return AggregateCall(func, argument, call.distinct)

    def _bind_grouped_expr(self, expr: ast.Expr, scope: Scope,
                           group_map: dict[ast.Expr, Column],
                           agg_map: dict[ast.FunctionCall, Column]
                           ) -> ScalarExpr:
        """Bind an expression evaluated *above* the GroupBy."""
        if expr in group_map:
            return ColumnRef(group_map[expr])
        if isinstance(expr, ast.FunctionCall) and expr.name in _AGGREGATE_FUNCS:
            return ColumnRef(agg_map[expr])
        if isinstance(expr, ast.Identifier):
            resolution = scope.resolve(expr.parts)
            if resolution.depth > 0:
                return ColumnRef(resolution.column)
            grouped_ids = {c.cid for c in group_map.values()}
            if resolution.column.cid in grouped_ids:
                return ColumnRef(resolution.column)
            raise BindError(
                f"column {expr} must appear in GROUP BY or inside an "
                f"aggregate function")
        if isinstance(expr, (ast.SubqueryExpr, ast.ExistsExpr, ast.InExpr,
                             ast.QuantifiedExpr)):
            # Subqueries above a GroupBy may only correlate on grouped
            # columns; binding through `scope` and validating afterwards
            # keeps this simple.
            bound = self._bind_expr(expr, scope)
            self._check_subquery_correlation(bound, scope, group_map)
            return bound
        bound_children = {}
        return self._rebuild_grouped(expr, scope, group_map, agg_map)

    def _rebuild_grouped(self, expr: ast.Expr, scope: Scope, group_map,
                         agg_map) -> ScalarExpr:
        """Recursive structural rebuild for composite grouped expressions."""
        bind = lambda e: self._bind_grouped_expr(  # noqa: E731
            e, scope, group_map, agg_map)
        if isinstance(expr, ast.BinaryOp):
            return self._combine_binary(expr.op, bind(expr.left),
                                        bind(expr.right))
        if isinstance(expr, ast.UnaryOp):
            operand = bind(expr.operand)
            if expr.op == "not":
                return Not(operand)
            return Negate(operand)
        if isinstance(expr, ast.CaseExpr):
            whens = [(bind(c), bind(v)) for c, v in expr.whens]
            otherwise = bind(expr.otherwise) if expr.otherwise else None
            return Case(whens, otherwise)
        if isinstance(expr, ast.BetweenExpr):
            return self._bind_between(expr, bind)
        if isinstance(expr, ast.LikeExpr):
            return self._bind_like(expr, bind)
        if isinstance(expr, ast.IsNullExpr):
            return IsNull(bind(expr.operand), expr.negated)
        if isinstance(expr, ast.ExtractExpr):
            from ..algebra import Extract
            return Extract(expr.part, bind(expr.operand))
        if isinstance(expr, ast.InExpr) and expr.values is not None:
            return self._bind_in_list(expr, bind)
        if isinstance(expr, (ast.NumberLiteral, ast.StringLiteral,
                             ast.BooleanLiteral, ast.NullLiteral,
                             ast.DateLiteral, ast.IntervalLiteral)):
            return self._bind_literal(expr)
        if isinstance(expr, ast.Parameter):
            return self._bind_parameter(expr)
        raise BindError(
            f"unsupported expression in grouped context: {type(expr).__name__}")

    def _check_subquery_correlation(self, bound: ScalarExpr, scope: Scope,
                                    group_map: dict) -> None:
        local_ids = {c.cid for _, _, c in scope.all_columns()}
        grouped_ids = {c.cid for c in group_map.values()}
        for rel in bound.relational_children:
            for col in rel.outer_references():
                if col.cid in local_ids and col.cid not in grouped_ids:
                    raise BindError(
                        f"subquery references column {col.name!r} which is "
                        f"neither grouped nor from an outer query")

    # -- expressions -----------------------------------------------------------

    def _bind_expr(self, expr: ast.Expr, scope: Scope) -> ScalarExpr:
        bind = lambda e: self._bind_expr(e, scope)  # noqa: E731

        if isinstance(expr, ast.Identifier):
            return ColumnRef(scope.resolve(expr.parts).column)
        if isinstance(expr, (ast.NumberLiteral, ast.StringLiteral,
                             ast.BooleanLiteral, ast.NullLiteral,
                             ast.DateLiteral, ast.IntervalLiteral)):
            return self._bind_literal(expr)
        if isinstance(expr, ast.Parameter):
            return self._bind_parameter(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._combine_binary(expr.op, bind(expr.left),
                                        bind(expr.right))
        if isinstance(expr, ast.UnaryOp):
            operand = bind(expr.operand)
            if expr.op == "not":
                self._require_boolean(operand, "NOT")
                return Not(operand)
            if not operand.dtype.is_numeric \
                    and operand.dtype is not DataType.UNKNOWN:
                raise BindError("unary minus requires a numeric operand")
            return Negate(operand)
        if isinstance(expr, ast.CaseExpr):
            whens = []
            for cond_ast, value_ast in expr.whens:
                cond = bind(cond_ast)
                self._require_boolean(cond, "CASE WHEN")
                whens.append((cond, bind(value_ast)))
            otherwise = bind(expr.otherwise) if expr.otherwise else None
            return Case(whens, otherwise)
        if isinstance(expr, ast.BetweenExpr):
            return self._bind_between(expr, bind)
        if isinstance(expr, ast.LikeExpr):
            return self._bind_like(expr, bind)
        if isinstance(expr, ast.IsNullExpr):
            return IsNull(bind(expr.operand), expr.negated)
        if isinstance(expr, ast.ExtractExpr):
            operand = bind(expr.operand)
            if operand.dtype not in (DataType.DATE, DataType.UNKNOWN):
                raise BindError("EXTRACT requires a date operand")
            from ..algebra import Extract
            return Extract(expr.part, operand)
        if isinstance(expr, ast.InExpr):
            if expr.values is not None:
                return self._bind_in_list(expr, bind)
            bound = self._bind_query(expr.subquery, scope)
            if len(bound.columns) != 1:
                raise BindError("IN subquery must produce exactly one column")
            return InSubquery(bind(expr.operand), bound.rel, expr.negated)
        if isinstance(expr, ast.ExistsExpr):
            bound = self._bind_query(expr.subquery, scope)
            return ExistsSubquery(bound.rel, expr.negated)
        if isinstance(expr, ast.SubqueryExpr):
            return self._bind_scalar_subquery(expr.subquery, scope)
        if isinstance(expr, ast.QuantifiedExpr):
            bound = self._bind_query(expr.subquery, scope)
            if len(bound.columns) != 1:
                raise BindError(
                    "quantified subquery must produce exactly one column")
            return QuantifiedComparison(expr.op, expr.quantifier,
                                        bind(expr.operand), bound.rel)
        if isinstance(expr, ast.FunctionCall):
            if expr.name in _AGGREGATE_FUNCS:
                raise BindError(
                    f"aggregate {expr.name!r} is not allowed here")
            raise BindError(f"unknown function {expr.name!r}")
        if isinstance(expr, ast.Star):
            raise BindError("* is only valid in the select list or count(*)")
        raise BindError(f"unsupported expression {type(expr).__name__}")

    def _bind_scalar_subquery(self, subquery: ast.Query,
                              scope: Scope) -> ScalarSubquery:
        bound = self._bind_query(subquery, scope)
        if len(bound.columns) != 1:
            raise BindError(
                "scalar subquery must produce exactly one column, "
                f"got {len(bound.columns)}")
        rel = bound.rel
        if not max_one_row(rel):
            # Class 3 (exception) subquery: needs the run-time cardinality
            # check.  Provably-single-row subqueries skip it (Section 2.4).
            rel = Max1row(rel)
        return ScalarSubquery(rel)

    def _bind_between(self, expr: ast.BetweenExpr, bind) -> ScalarExpr:
        operand = bind(expr.operand)
        low = bind(expr.low)
        high = bind(expr.high)
        between = And([Comparison("<=", low, operand),
                       Comparison("<=", operand, high)])
        return Not(between) if expr.negated else between

    def _bind_like(self, expr: ast.LikeExpr, bind) -> ScalarExpr:
        operand = bind(expr.operand)
        if not isinstance(expr.pattern, ast.StringLiteral):
            raise BindError("LIKE requires a string-literal pattern")
        if operand.dtype not in (DataType.VARCHAR, DataType.UNKNOWN):
            raise BindError("LIKE requires a string operand")
        return Like(operand, expr.pattern.value, expr.negated)

    def _bind_in_list(self, expr: ast.InExpr, bind) -> ScalarExpr:
        operand = bind(expr.operand)
        bound_values = [bind(v) for v in expr.values]
        if all(isinstance(v, Literal) for v in bound_values):
            return InList(operand, [v.value for v in bound_values],
                          expr.negated)
        comparisons = [Comparison("=", operand, v) for v in bound_values]
        membership = Or(comparisons)
        return Not(membership) if expr.negated else membership

    def _bind_parameter(self, expr: ast.Parameter) -> Parameter:
        if self._view_stack:
            raise BindError(
                "parameters are not allowed in view definitions "
                f"(view {self._view_stack[-1]!r})")
        param = self._parameters.get(expr.index)
        if param is None:
            param = Parameter(expr.index, expr.name)
            self._parameters[expr.index] = param
        return param

    def _bind_literal(self, expr: ast.Expr) -> Literal:
        if isinstance(expr, ast.NumberLiteral):
            return Literal(expr.value)
        if isinstance(expr, ast.StringLiteral):
            return Literal(expr.value)
        if isinstance(expr, ast.BooleanLiteral):
            return Literal(expr.value)
        if isinstance(expr, ast.NullLiteral):
            return Literal(None)
        if isinstance(expr, ast.DateLiteral):
            return Literal(datetime.date.fromisoformat(expr.text))
        if isinstance(expr, ast.IntervalLiteral):
            if expr.unit == "day":
                return Literal(Interval(days=expr.quantity))
            if expr.unit == "month":
                return Literal(Interval(months=expr.quantity))
            return Literal(Interval(months=12 * expr.quantity))
        raise BindError(f"not a literal: {type(expr).__name__}")

    def _combine_binary(self, op: str, left: ScalarExpr,
                        right: ScalarExpr) -> ScalarExpr:
        if op == "and":
            self._require_boolean(left, "AND")
            self._require_boolean(right, "AND")
            return And([left, right])
        if op == "or":
            self._require_boolean(left, "OR")
            self._require_boolean(right, "OR")
            return Or([left, right])
        if op in Comparison.VALID_OPS:
            self._check_comparable(left, right, op)
            return Comparison(op, left, right)
        if op in Arithmetic.VALID_OPS:
            self._check_arithmetic(left, right, op)
            return Arithmetic(op, left, right)
        raise BindError(f"unsupported operator {op!r}")

    # -- type checks -----------------------------------------------------------

    def _require_boolean(self, expr: ScalarExpr, context: str) -> None:
        # UNKNOWN (an untyped parameter) is accepted anywhere; its value is
        # type-checked when bound at execution time.
        if expr.dtype not in (DataType.BOOLEAN, DataType.UNKNOWN):
            raise BindError(f"{context} requires a boolean, got {expr.dtype}")

    def _check_comparable(self, left: ScalarExpr, right: ScalarExpr,
                          op: str) -> None:
        lt, rt = left.dtype, right.dtype
        if DataType.UNKNOWN in (lt, rt):
            return
        if lt.is_numeric and rt.is_numeric:
            return
        if lt == rt:
            return
        raise BindError(f"cannot compare {lt} {op} {rt}")

    def _check_arithmetic(self, left: ScalarExpr, right: ScalarExpr,
                          op: str) -> None:
        lt, rt = left.dtype, right.dtype
        if DataType.UNKNOWN in (lt, rt):
            return
        if lt.is_numeric and rt.is_numeric:
            return
        if lt is DataType.DATE and rt is DataType.INTERVAL and op in "+-":
            return
        if lt is DataType.INTERVAL and rt is DataType.DATE and op == "+":
            return
        if lt is DataType.DATE and rt is DataType.DATE and op == "-":
            return
        raise BindError(f"invalid arithmetic {lt} {op} {rt}")


def make_get(table: TableDef) -> Get:
    """A fresh Get over a catalog table (new column identities)."""
    columns = [Column(c.name, c.dtype, c.nullable) for c in table.columns]
    by_name = {c.name: col for c, col in zip(table.columns, columns)}
    keys = [tuple(by_name[name] for name in key) for key in table.all_keys()]
    return Get(table.name, columns, keys, table)


def _contains_aggregate_call(expr: ast.Expr) -> bool:
    calls: list[ast.FunctionCall] = []
    _collect_aggregate_calls(expr, calls)
    return bool(calls)


def _collect_aggregate_calls(expr: ast.Expr,
                             into: list[ast.FunctionCall]) -> None:
    """Aggregate calls at this query level (not inside subqueries)."""
    if isinstance(expr, ast.FunctionCall):
        if expr.name in _AGGREGATE_FUNCS:
            into.append(expr)
            return
        for arg in expr.args:
            _collect_aggregate_calls(arg, into)
        return
    if isinstance(expr, ast.BinaryOp):
        _collect_aggregate_calls(expr.left, into)
        _collect_aggregate_calls(expr.right, into)
    elif isinstance(expr, ast.UnaryOp):
        _collect_aggregate_calls(expr.operand, into)
    elif isinstance(expr, ast.CaseExpr):
        for cond, value in expr.whens:
            _collect_aggregate_calls(cond, into)
            _collect_aggregate_calls(value, into)
        if expr.otherwise is not None:
            _collect_aggregate_calls(expr.otherwise, into)
    elif isinstance(expr, ast.BetweenExpr):
        _collect_aggregate_calls(expr.operand, into)
        _collect_aggregate_calls(expr.low, into)
        _collect_aggregate_calls(expr.high, into)
    elif isinstance(expr, ast.LikeExpr):
        _collect_aggregate_calls(expr.operand, into)
    elif isinstance(expr, ast.IsNullExpr):
        _collect_aggregate_calls(expr.operand, into)
    elif isinstance(expr, ast.InExpr):
        _collect_aggregate_calls(expr.operand, into)
        if expr.values is not None:
            for value in expr.values:
                _collect_aggregate_calls(value, into)
        # subquery: separate level — do not descend
    elif isinstance(expr, ast.QuantifiedExpr):
        _collect_aggregate_calls(expr.operand, into)
    # ExistsExpr / SubqueryExpr: separate level — do not descend


def _derive_name(expr: ast.Expr, position: int) -> str:
    if isinstance(expr, ast.Identifier):
        return expr.parts[-1].lower()
    if isinstance(expr, ast.FunctionCall):
        return expr.name.lower()
    return f"col{position + 1}"
