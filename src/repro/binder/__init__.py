"""Binder/algebrizer substrate: SQL AST → mutually recursive operator tree."""

from .binder import Binder, BoundQuery, make_get
from .scope import Resolution, Scope

__all__ = ["Binder", "BoundQuery", "Resolution", "Scope", "make_get"]
