"""Name-resolution scopes.

A scope holds the relations visible at one query level; its parent chain
implements correlation — an identifier that fails to resolve locally is
looked up in enclosing scopes, and resolving at depth > 0 makes the
expression correlated (paper Section 1.1: "parameters resolved from a table
outside of the subquery").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..algebra.columns import Column
from ..errors import BindError


@dataclass(frozen=True)
class Resolution:
    column: Column
    depth: int  # 0 = current scope; >0 = outer (correlated)


class Scope:
    """One level of visible FROM bindings."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self._relations: list[tuple[str, dict[str, Column]]] = []

    def add_relation(self, alias: str, columns: dict[str, Column]) -> None:
        alias = alias.lower()
        if any(existing == alias for existing, _ in self._relations):
            raise BindError(f"duplicate table alias {alias!r}")
        self._relations.append((alias, dict(columns)))

    @property
    def relations(self) -> list[tuple[str, dict[str, Column]]]:
        return list(self._relations)

    def resolve(self, parts: tuple[str, ...]) -> Resolution:
        """Resolve ``col`` or ``alias.col`` walking out through parents."""
        depth = 0
        scope: Optional[Scope] = self
        while scope is not None:
            column = scope._resolve_local(parts)
            if column is not None:
                return Resolution(column, depth)
            scope = scope.parent
            depth += 1
        raise BindError(f"unknown column {'.'.join(parts)!r}")

    def _resolve_local(self, parts: tuple[str, ...]) -> Optional[Column]:
        if len(parts) == 2:
            alias, name = parts
            for existing, columns in self._relations:
                if existing == alias.lower():
                    if name.lower() in columns:
                        return columns[name.lower()]
                    raise BindError(
                        f"no column {name!r} in relation {alias!r}")
            return None
        (name,) = parts
        matches = [(alias, columns[name.lower()])
                   for alias, columns in self._relations
                   if name.lower() in columns]
        if len(matches) > 1:
            aliases = ", ".join(alias for alias, _ in matches)
            raise BindError(f"ambiguous column {name!r} (in {aliases})")
        if matches:
            return matches[0][1]
        return None

    def all_columns(self) -> list[tuple[str, str, Column]]:
        """(alias, column name, column) triples in declaration order."""
        result = []
        for alias, columns in self._relations:
            for name, column in columns.items():
                result.append((alias, name, column))
        return result

    def relation_columns(self, alias: str) -> dict[str, Column]:
        for existing, columns in self._relations:
            if existing == alias.lower():
                return dict(columns)
        raise BindError(f"unknown relation alias {alias!r}")
