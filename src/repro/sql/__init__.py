"""SQL front end: lexer, AST and recursive-descent parser.

Dialect (the subset the paper's examples and the TPC-H suite require):

* ``SELECT [DISTINCT] items`` — expressions, aliases, ``*`` / ``alias.*``;
* ``FROM`` — tables, views, aliases, derived tables with column aliases,
  ``JOIN``/``INNER JOIN``/``LEFT [OUTER] JOIN ... ON``/``CROSS JOIN``,
  comma cross products (``RIGHT``/``FULL`` rejected with a rewrite hint);
* ``WHERE``/``HAVING`` — 3VL boolean expressions; comparisons, ``AND``/
  ``OR``/``NOT``, ``[NOT] IN`` (value lists and subqueries),
  ``[NOT] EXISTS``, quantified comparisons ``op ANY|SOME|ALL (subquery)``,
  ``[NOT] BETWEEN``, ``[NOT] LIKE`` (constant patterns, ``%``/``_``),
  ``IS [NOT] NULL``; scalar subqueries anywhere an expression is allowed
  (including CASE branches, with the Section 2.4 conditional-execution
  semantics);
* ``GROUP BY`` expressions with ``count(*)``, ``count``, ``sum``, ``avg``,
  ``min``, ``max`` (each optionally ``DISTINCT``);
* ``ORDER BY [ASC|DESC]`` (select aliases or input columns), ``LIMIT n``;
* ``UNION ALL`` and ``EXCEPT ALL`` (plain UNION/EXCEPT rejected: the
  algebra is bag-oriented — use DISTINCT explicitly);
* literals: integers, decimals, strings (``''`` escaping), ``TRUE``/
  ``FALSE``/``NULL``, ``DATE 'YYYY-MM-DD'``,
  ``INTERVAL 'n' DAY|MONTH|YEAR``; ``EXTRACT(YEAR|MONTH|DAY FROM d)``;
  arithmetic ``+ - * /`` with date±interval support;
* ``--`` line comments; case-insensitive keywords and identifiers;
  ``"quoted"`` identifiers;
* ``EXPLAIN [ANALYZE] <query>`` — statement-level prefix
  (:func:`split_explain` / :func:`parse_statement`); ``ANALYZE``
  executes once with per-operator row counting.

Unsupported (documented): window functions, ``WITH``/CTEs (use views),
``RIGHT``/``FULL OUTER JOIN``, string functions (``substring`` — the Q22
variant substitutes ``c_nationkey``), correlated/lateral derived tables.
"""

from . import ast
from .lexer import Token, TokenType, tokenize
from .parser import (ExplainStatement, MatViewStatement, parse,
                     parse_statement, split_explain, split_matview_ddl)

__all__ = ["ExplainStatement", "MatViewStatement", "Token", "TokenType",
           "ast", "parse", "parse_statement", "split_explain",
           "split_matview_ddl", "tokenize"]
