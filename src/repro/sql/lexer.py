"""SQL lexer.

Produces a flat token stream with line/column positions for error messages.
Identifiers and keywords are case-insensitive; string literals use single
quotes with ``''`` escaping; ``--`` starts a line comment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SqlSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAM = "param"
    EOF = "eof"


KEYWORDS = frozenset("""
    select from where group by having order asc desc limit distinct
    as on and or not in exists between like is null case when then else end
    join inner left right full outer cross union all any some except
    date interval day month year count sum avg min max true false extract
    explain analyze
""".split())

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "||")

PUNCTUATION = "(),."


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def matches_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in words

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def column() -> int:
        return i - line_start + 1

    while i < n:
        ch = text[i]

        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue

        start_column = column()

        if ch == "'":
            i += 1
            parts: list[str] = []
            while True:
                if i >= n:
                    raise SqlSyntaxError("unterminated string literal",
                                         line, start_column)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(text[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(parts),
                                line, start_column))
            continue

        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # Don't swallow "1." followed by an identifier (alias.col
                    # never follows a number, but stay strict anyway).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j],
                                line, start_column))
            i = j
            continue

        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered,
                                    line, start_column))
            else:
                tokens.append(Token(TokenType.IDENT, lowered,
                                    line, start_column))
            i = j
            continue

        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 1
            if j >= n:
                raise SqlSyntaxError("unterminated quoted identifier",
                                     line, start_column)
            tokens.append(Token(TokenType.IDENT, text[i + 1:j].lower(),
                                line, start_column))
            i = j + 1
            continue

        if ch == "?":
            # Positional parameter marker; slots are assigned by the parser.
            tokens.append(Token(TokenType.PARAM, "", line, start_column))
            i += 1
            continue

        if ch == ":":
            j = i + 1
            if j >= n or not (text[j].isalpha() or text[j] == "_"):
                raise SqlSyntaxError("expected parameter name after ':'",
                                     line, start_column)
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(TokenType.PARAM, text[i + 1:j].lower(),
                                line, start_column))
            i = j
            continue

        matched_operator = None
        for op in OPERATORS:
            if text.startswith(op, i):
                matched_operator = op
                break
        if matched_operator:
            value = "<>" if matched_operator == "!=" else matched_operator
            tokens.append(Token(TokenType.OPERATOR, value, line, start_column))
            i += len(matched_operator)
            continue

        if ch in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, ch, line, start_column))
            i += 1
            continue

        raise SqlSyntaxError(f"unexpected character {ch!r}", line, start_column)

    tokens.append(Token(TokenType.EOF, "", line, column()))
    return tokens
