"""Abstract syntax tree for the supported SQL subset.

Pure syntax: no name resolution, no types.  The binder
(:mod:`repro.binder`) turns these nodes into the algebra of
:mod:`repro.algebra`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expression AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Identifier(Expr):
    """A possibly qualified name: ``col`` or ``alias.col``."""

    parts: tuple[str, ...]

    def __str__(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list or inside count(*)."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class NumberLiteral(Expr):
    text: str

    @property
    def value(self) -> Union[int, float]:
        if "." in self.text:
            return float(self.text)
        return int(self.text)


@dataclass(frozen=True)
class StringLiteral(Expr):
    value: str


@dataclass(frozen=True)
class BooleanLiteral(Expr):
    value: bool


@dataclass(frozen=True)
class NullLiteral(Expr):
    pass


@dataclass(frozen=True)
class DateLiteral(Expr):
    """``date 'YYYY-MM-DD'``."""

    text: str


@dataclass(frozen=True)
class IntervalLiteral(Expr):
    """``interval 'N' day|month|year``."""

    quantity: int
    unit: str  # "day" | "month" | "year"


@dataclass(frozen=True)
class Parameter(Expr):
    """A parameter marker: positional ``?`` or named ``:name``.

    ``index`` is the zero-based slot assigned by the parser (appearance
    order for ``?``; first-appearance order per distinct name for
    ``:name``).
    """

    index: int
    name: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic, comparison, AND/OR — parser-level binary operator."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-" or "not"
    operand: Expr


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Aggregate or scalar function call."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False


@dataclass(frozen=True)
class ExtractExpr(Expr):
    """``extract(year|month|day from expr)``."""

    part: str
    operand: Expr


@dataclass(frozen=True)
class CaseExpr(Expr):
    whens: tuple[tuple[Expr, Expr], ...]
    otherwise: Optional[Expr]


@dataclass(frozen=True)
class BetweenExpr(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class LikeExpr(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNullExpr(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class InExpr(Expr):
    """``operand [NOT] IN (values... | subquery)``."""

    operand: Expr
    values: Optional[tuple[Expr, ...]] = None
    subquery: Optional["Query"] = None
    negated: bool = False


@dataclass(frozen=True)
class ExistsExpr(Expr):
    subquery: "Query"
    negated: bool = False


@dataclass(frozen=True)
class SubqueryExpr(Expr):
    """A parenthesized query used as a scalar value."""

    subquery: "Query"


@dataclass(frozen=True)
class QuantifiedExpr(Expr):
    """``operand op ANY|ALL (subquery)`` (SOME is ANY)."""

    op: str
    quantifier: str  # "ANY" | "ALL"
    operand: Expr
    subquery: "Query"


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------

class TableExpr:
    """Base class for FROM items."""

    __slots__ = ()


@dataclass(frozen=True)
class TableRef(TableExpr):
    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable(TableExpr):
    """``(subquery) AS alias [(column aliases)]``."""

    subquery: "Query"
    alias: str
    column_aliases: Optional[tuple[str, ...]] = None


@dataclass(frozen=True)
class JoinExpr(TableExpr):
    """Explicit JOIN syntax; ``kind`` in {inner, left, cross}."""

    kind: str
    left: TableExpr
    right: TableExpr
    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    select_items: tuple[SelectItem, ...]
    distinct: bool = False
    from_items: tuple[TableExpr, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: int = 0


@dataclass(frozen=True)
class UnionStatement:
    """``left UNION ALL right`` (bag union; plain UNION is rejected by the
    parser with a pointer to use UNION ALL + DISTINCT, matching the paper's
    bag-oriented algebra)."""

    left: "Query"
    right: "Query"


@dataclass(frozen=True)
class ExceptStatement:
    """``left EXCEPT ALL right`` (bag difference)."""

    left: "Query"
    right: "Query"


Query = Union[SelectStatement, UnionStatement, ExceptStatement]
