"""Recursive-descent SQL parser.

Covers the subset needed by the paper's examples and the targeted TPC-H
queries: SELECT/FROM/WHERE/GROUP BY/HAVING/ORDER BY/LIMIT, explicit joins
(INNER / LEFT [OUTER] / CROSS), derived tables, UNION ALL, and subqueries in
every scalar position (scalar, EXISTS, IN, quantified comparisons), plus
CASE, BETWEEN, LIKE, IS NULL, date/interval literals and arithmetic.

Operator precedence (low to high):
``OR`` < ``AND`` < ``NOT`` < comparison/IN/BETWEEN/LIKE/IS < ``+ -`` <
``* /`` < unary minus < primary.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Optional

from ..errors import SqlSyntaxError
from .ast import (BetweenExpr, BinaryOp, BooleanLiteral, CaseExpr,
                  DateLiteral, DerivedTable, ExistsExpr, Expr, ExtractExpr,
                  FunctionCall, Identifier, InExpr, IntervalLiteral,
                  IsNullExpr, JoinExpr, LikeExpr, NullLiteral,
                  NumberLiteral, OrderItem, Parameter, Query, QuantifiedExpr,
                  SelectItem, SelectStatement, Star, StringLiteral,
                  SubqueryExpr, TableExpr, TableRef, UnaryOp,
                  UnionStatement)
from .ast import ExceptStatement
from .lexer import Token, TokenType, tokenize

_AGGREGATE_NAMES = ("count", "sum", "avg", "min", "max")
_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

#: Maximum combined nesting depth of subqueries and parenthesized
#: expressions.  The recursive-descent parser burns ~9 Python frames per
#: level, so an explicit cap well below the interpreter's recursion limit
#: turns a pathological 1000-level input into a clear ``SqlSyntaxError``
#: instead of a raw ``RecursionError`` somewhere mid-pipeline.
MAX_NESTING_DEPTH = 64


def parse(sql: str) -> Query:
    """Parse one SQL query (SELECT or UNION ALL chain)."""
    parser = _Parser(tokenize(sql))
    query = parser.parse_query()
    parser.expect_eof()
    return query


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN [ANALYZE] <query>``: a request for the query's plan
    (and, with ANALYZE, for one profiled execution of it)."""

    query: Query
    analyze: bool = False
    #: The inner query's original text, so callers that key caches on SQL
    #: (the database facade) can reuse their text-based pipeline.
    query_sql: str = ""


def parse_statement(sql: str) -> "Query | ExplainStatement":
    """Parse one statement: a query, or ``EXPLAIN [ANALYZE] <query>``."""
    split = split_explain(sql)
    if split is None:
        return parse(sql)
    inner_sql, analyze = split
    return ExplainStatement(parse(inner_sql), analyze, inner_sql)


def split_explain(sql: str) -> Optional[tuple[str, bool]]:
    """``(inner_sql, analyze)`` when ``sql`` is an EXPLAIN statement.

    Returns ``None`` for ordinary queries — including unlexable text, so
    the caller's normal parse path reports the real syntax error.  The
    inner SQL is the original text with the ``EXPLAIN [ANALYZE]`` prefix
    sliced off (comments and layout preserved), which keeps downstream
    SQL-keyed caches consistent with executing the query directly.
    """
    try:
        tokens = tokenize(sql)
    except SqlSyntaxError:
        return None
    if not tokens or not tokens[0].matches_keyword("explain"):
        return None
    analyze = tokens[1].matches_keyword("analyze")
    rest = tokens[2] if analyze else tokens[1]
    if rest.type is TokenType.EOF:
        raise SqlSyntaxError("expected a query after EXPLAIN",
                             rest.line, rest.column)
    return sql[_token_offset(sql, rest):], analyze


@dataclass(frozen=True)
class MatViewStatement:
    """One materialized-view DDL statement.

    ``kind`` is ``"create"`` (``CREATE MATERIALIZED VIEW name AS
    <query>``), ``"drop"`` or ``"refresh"``; ``sql`` carries the
    defining query's original text for ``create`` (layout preserved,
    like :func:`split_explain`) and is empty otherwise.
    """

    kind: str
    name: str
    sql: str = ""


def split_matview_ddl(sql: str) -> Optional[MatViewStatement]:
    """Recognize ``CREATE | DROP | REFRESH MATERIALIZED VIEW`` statements.

    Returns ``None`` for anything else — including unlexable text and
    statements starting with a line comment, so ordinary queries always
    take the normal parse path and report their own syntax errors.
    ``CREATE``/``MATERIALIZED``/``VIEW`` are not reserved words (they lex
    as identifiers), which keeps them usable as column names everywhere
    else.
    """
    head = sql.lstrip()[:8].lower()
    if not (head.startswith("create") or head.startswith("drop")
            or head.startswith("refresh")):
        return None
    try:
        tokens = tokenize(sql)
    except SqlSyntaxError:
        return None

    def word(index: int, text: str) -> bool:
        token = tokens[min(index, len(tokens) - 1)]
        return token.type is TokenType.IDENT and token.value == text

    if word(0, "create"):
        kind = "create"
    elif word(0, "drop"):
        kind = "drop"
    elif word(0, "refresh"):
        kind = "refresh"
    else:
        return None
    if not (word(1, "materialized") and word(2, "view")):
        return None
    name_token = tokens[min(3, len(tokens) - 1)]
    if name_token.type is not TokenType.IDENT:
        raise SqlSyntaxError("expected a view name after MATERIALIZED "
                             "VIEW", name_token.line, name_token.column)
    name = name_token.value
    if kind in ("drop", "refresh"):
        trailing = tokens[4]
        if trailing.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected input after the view name: "
                f"{trailing.value!r}", trailing.line, trailing.column)
        return MatViewStatement(kind, name)
    as_token = tokens[4]
    if not as_token.matches_keyword("as"):
        raise SqlSyntaxError("expected AS after the view name",
                             as_token.line, as_token.column)
    rest = tokens[5]
    if rest.type is TokenType.EOF:
        raise SqlSyntaxError("expected a query after AS",
                             rest.line, rest.column)
    return MatViewStatement("create", name,
                            sql[_token_offset(sql, rest):])


def _token_offset(sql: str, token: Token) -> int:
    """Absolute character offset of ``token`` in ``sql`` (tokens carry
    1-based line/column positions)."""
    offset = 0
    for _ in range(token.line - 1):
        offset = sql.index("\n", offset) + 1
    return offset + token.column - 1


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0
        # Combined subquery/expression nesting depth (see MAX_NESTING_DEPTH).
        self._depth = 0
        # Parameter slot assignment is statement-wide (subqueries included).
        self._positional_params = 0
        self._named_params: dict[str, int] = {}

    def _enter_nesting(self) -> None:
        self._depth += 1
        if self._depth > MAX_NESTING_DEPTH:
            token = self.current
            raise SqlSyntaxError(
                f"query nesting exceeds the maximum depth of "
                f"{MAX_NESTING_DEPTH} (subqueries and parenthesized "
                f"expressions combined)", token.line, token.column)

    # -- token plumbing ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._position += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.current
        return SqlSyntaxError(f"{message} (found {token.value!r})",
                              token.line, token.column)

    def accept_keyword(self, *words: str) -> bool:
        if self.current.matches_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word.upper()}")

    def accept_punct(self, char: str) -> bool:
        if self.current.type is TokenType.PUNCT and self.current.value == char:
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise self.error(f"expected {char!r}")

    def accept_operator(self, *ops: str) -> Optional[str]:
        if (self.current.type is TokenType.OPERATOR
                and self.current.value in ops):
            return self.advance().value
        return None

    def expect_eof(self) -> None:
        if self.current.type is not TokenType.EOF:
            raise self.error("unexpected trailing input")

    # -- queries ------------------------------------------------------------------

    def parse_query(self) -> Query:
        left = self._parse_query_term()
        while self.current.matches_keyword("union", "except"):
            keyword = self.advance().value
            if not self.accept_keyword("all"):
                raise self.error(
                    f"plain {keyword.upper()} is unsupported; use "
                    f"{keyword.upper()} ALL (optionally with SELECT "
                    f"DISTINCT) — the algebra is bag-oriented")
            right = self._parse_query_term()
            if keyword == "union":
                left = UnionStatement(left, right)
            else:
                left = ExceptStatement(left, right)
        return left

    def _parse_query_term(self) -> Query:
        if self.accept_punct("("):
            query = self.parse_query()
            self.expect_punct(")")
            return query
        return self.parse_select()

    def parse_select(self) -> SelectStatement:
        self._enter_nesting()
        try:
            return self._parse_select_body()
        finally:
            self._depth -= 1

    def _parse_select_body(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        self.accept_keyword("all")

        select_items = [self._parse_select_item()]
        while self.accept_punct(","):
            select_items.append(self._parse_select_item())

        from_items: list[TableExpr] = []
        if self.accept_keyword("from"):
            from_items.append(self._parse_table_expr())
            while self.accept_punct(","):
                from_items.append(self._parse_table_expr())

        where = self.parse_expr() if self.accept_keyword("where") else None

        group_by: list[Expr] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self.accept_keyword("having") else None

        order_by: list[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self.accept_punct(","):
                order_by.append(self._parse_order_item())

        limit = None
        offset = 0
        if self.accept_keyword("limit"):
            limit = self._expect_integer("LIMIT")
            if self.current.type is TokenType.IDENT \
                    and self.current.value == "offset":
                self.advance()
                offset = self._expect_integer("OFFSET")

        return SelectStatement(
            select_items=tuple(select_items),
            distinct=distinct,
            from_items=tuple(from_items),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset)

    def _expect_integer(self, context: str) -> int:
        token = self.current
        if token.type is not TokenType.NUMBER or "." in token.value:
            raise self.error(f"{context} expects an integer")
        return int(self.advance().value)

    def _parse_select_item(self) -> SelectItem:
        if self.current.type is TokenType.OPERATOR and self.current.value == "*":
            self.advance()
            return SelectItem(Star())
        # alias.*
        if (self.current.type is TokenType.IDENT
                and self.peek().type is TokenType.PUNCT
                and self.peek().value == "."
                and self.peek(2).type is TokenType.OPERATOR
                and self.peek(2).value == "*"):
            qualifier = self.advance().value
            self.advance()  # .
            self.advance()  # *
            return SelectItem(Star(qualifier))
        expr = self.parse_expr()
        alias = self._parse_optional_alias()
        return SelectItem(expr, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return OrderItem(expr, ascending)

    def _parse_optional_alias(self) -> Optional[str]:
        if self.accept_keyword("as"):
            token = self.current
            if token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise self.error("expected alias after AS")
            return self.advance().value
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        return None

    # -- FROM clause ------------------------------------------------------------

    def _parse_table_expr(self) -> TableExpr:
        left = self._parse_table_primary()
        while True:
            if self.accept_keyword("cross"):
                self.expect_keyword("join")
                right = self._parse_table_primary()
                left = JoinExpr("cross", left, right, None)
                continue
            explicit_kind = None
            if self.current.matches_keyword("inner"):
                explicit_kind = "inner"
                self.advance()
            elif self.current.matches_keyword("left"):
                explicit_kind = "left"
                self.advance()
                self.accept_keyword("outer")
            elif self.current.matches_keyword("right", "full"):
                raise self.error("RIGHT/FULL OUTER JOIN is not supported; "
                                 "rewrite as LEFT OUTER JOIN")
            if explicit_kind is None and not self.current.matches_keyword("join"):
                return left
            self.expect_keyword("join")
            right = self._parse_table_primary()
            self.expect_keyword("on")
            condition = self.parse_expr()
            left = JoinExpr(explicit_kind or "inner", left, right, condition)

    def _parse_table_primary(self) -> TableExpr:
        if self.accept_punct("("):
            if self.current.matches_keyword("select") or self._starts_nested_query():
                subquery = self.parse_query()
                self.expect_punct(")")
                alias = self._parse_optional_alias()
                if alias is None:
                    raise self.error("derived table requires an alias")
                column_aliases = self._parse_optional_column_aliases()
                return DerivedTable(subquery, alias, column_aliases)
            # parenthesized join tree
            inner = self._parse_table_expr()
            self.expect_punct(")")
            return inner
        token = self.current
        if token.type is not TokenType.IDENT:
            raise self.error("expected table name")
        name = self.advance().value
        alias = self._parse_optional_alias()
        return TableRef(name, alias)

    def _starts_nested_query(self) -> bool:
        """After '(', does another '(' chain lead to SELECT?"""
        offset = 0
        while self.peek(offset).type is TokenType.PUNCT and \
                self.peek(offset).value == "(":
            offset += 1
        return self.peek(offset).matches_keyword("select")

    def _parse_optional_column_aliases(self) -> Optional[tuple[str, ...]]:
        if not self.accept_punct("("):
            return None
        names = []
        while True:
            token = self.current
            if token.type is not TokenType.IDENT:
                raise self.error("expected column alias")
            names.append(self.advance().value)
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return tuple(names)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> Expr:
        self._enter_nesting()
        try:
            return self._parse_or()
        finally:
            self._depth -= 1

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            right = self._parse_and()
            left = BinaryOp("or", left, right)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            right = self._parse_not()
            left = BinaryOp("and", left, right)
        return left

    def _parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            self._enter_nesting()  # NOT chains recurse too
            try:
                return UnaryOp("not", self._parse_not())
            finally:
                self._depth -= 1
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        while True:
            negated = False
            if self.current.matches_keyword("not"):
                nxt = self.peek()
                if nxt.matches_keyword("in", "between", "like"):
                    self.advance()
                    negated = True
                else:
                    return left

            op = self.accept_operator(*_COMPARISON_OPS)
            if op is not None:
                if self.current.matches_keyword("any", "all", "some"):
                    quantifier = self.advance().value
                    quantifier = "ANY" if quantifier in ("any", "some") else "ALL"
                    self.expect_punct("(")
                    subquery = self.parse_query()
                    self.expect_punct(")")
                    left = QuantifiedExpr(op, quantifier, left, subquery)
                else:
                    right = self._parse_additive()
                    left = BinaryOp(op, left, right)
                continue

            if self.accept_keyword("in"):
                self.expect_punct("(")
                if self.current.matches_keyword("select") or self._starts_nested_query():
                    subquery = self.parse_query()
                    self.expect_punct(")")
                    left = InExpr(left, subquery=subquery, negated=negated)
                else:
                    values = [self.parse_expr()]
                    while self.accept_punct(","):
                        values.append(self.parse_expr())
                    self.expect_punct(")")
                    left = InExpr(left, values=tuple(values), negated=negated)
                continue

            if self.accept_keyword("between"):
                low = self._parse_additive()
                self.expect_keyword("and")
                high = self._parse_additive()
                left = BetweenExpr(left, low, high, negated)
                continue

            if self.accept_keyword("like"):
                pattern = self._parse_additive()
                left = LikeExpr(left, pattern, negated)
                continue

            if self.accept_keyword("is"):
                is_negated = self.accept_keyword("not")
                self.expect_keyword("null")
                left = IsNullExpr(left, is_negated)
                continue

            if negated:
                raise self.error("expected IN, BETWEEN or LIKE after NOT")
            return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            op = self.accept_operator("+", "-", "||")
            if op is None:
                return left
            right = self._parse_multiplicative()
            left = BinaryOp(op, left, right)

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            op = self.accept_operator("*", "/")
            if op is None:
                return left
            right = self._parse_unary()
            left = BinaryOp(op, left, right)

    def _parse_unary(self) -> Expr:
        if self.accept_operator("-"):
            self._enter_nesting()  # sign chains recurse too
            try:
                return UnaryOp("-", self._parse_unary())
            finally:
                self._depth -= 1
        if self.accept_operator("+"):
            while self.accept_operator("+"):  # unary plus is a no-op
                pass
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.current

        if token.type is TokenType.NUMBER:
            self.advance()
            return NumberLiteral(token.value)

        if token.type is TokenType.STRING:
            self.advance()
            return StringLiteral(token.value)

        if token.type is TokenType.PARAM:
            self.advance()
            return self._make_parameter(token)

        if token.matches_keyword("null"):
            self.advance()
            return NullLiteral()

        if token.matches_keyword("true", "false"):
            self.advance()
            return BooleanLiteral(token.value == "true")

        if token.matches_keyword("date"):
            self.advance()
            text_token = self.current
            if text_token.type is not TokenType.STRING:
                raise self.error("DATE expects a string literal")
            self.advance()
            try:
                datetime.date.fromisoformat(text_token.value)
            except ValueError:
                raise SqlSyntaxError(
                    f"invalid date literal {text_token.value!r}",
                    text_token.line, text_token.column) from None
            return DateLiteral(text_token.value)

        if token.matches_keyword("interval"):
            self.advance()
            quantity_token = self.current
            if quantity_token.type is not TokenType.STRING:
                raise self.error("INTERVAL expects a quoted quantity")
            self.advance()
            try:
                quantity = int(quantity_token.value)
            except ValueError:
                raise SqlSyntaxError(
                    f"invalid interval quantity {quantity_token.value!r}",
                    quantity_token.line, quantity_token.column) from None
            if not self.current.matches_keyword("day", "month", "year"):
                raise self.error("expected DAY, MONTH or YEAR")
            unit = self.advance().value
            return IntervalLiteral(quantity, unit)

        if token.matches_keyword("extract"):
            self.advance()
            self.expect_punct("(")
            if not self.current.matches_keyword("year", "month", "day"):
                raise self.error("EXTRACT supports YEAR, MONTH and DAY")
            part = self.advance().value
            self.expect_keyword("from")
            operand = self.parse_expr()
            self.expect_punct(")")
            return ExtractExpr(part, operand)

        if token.matches_keyword("case"):
            return self._parse_case()

        if token.matches_keyword("exists"):
            self.advance()
            self.expect_punct("(")
            subquery = self.parse_query()
            self.expect_punct(")")
            return ExistsExpr(subquery)

        if token.matches_keyword(*_AGGREGATE_NAMES):
            name = self.advance().value
            self.expect_punct("(")
            distinct = self.accept_keyword("distinct")
            if (name == "count" and self.current.type is TokenType.OPERATOR
                    and self.current.value == "*"):
                self.advance()
                self.expect_punct(")")
                return FunctionCall("count", (Star(),), distinct)
            args = [self.parse_expr()]
            while self.accept_punct(","):
                args.append(self.parse_expr())
            self.expect_punct(")")
            return FunctionCall(name, tuple(args), distinct)

        if token.type is TokenType.PUNCT and token.value == "(":
            self.advance()
            if self.current.matches_keyword("select") or self._starts_nested_query():
                subquery = self.parse_query()
                self.expect_punct(")")
                return SubqueryExpr(subquery)
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr

        if token.type is TokenType.IDENT:
            parts = [self.advance().value]
            while (self.current.type is TokenType.PUNCT
                   and self.current.value == "."
                   and self.peek().type is TokenType.IDENT):
                self.advance()
                parts.append(self.advance().value)
            if len(parts) > 2:
                raise self.error("at most alias.column qualification supported")
            return Identifier(tuple(parts))

        raise self.error("expected expression")

    def _make_parameter(self, token: Token) -> Parameter:
        if token.value == "":  # positional `?`
            if self._named_params:
                raise SqlSyntaxError(
                    "cannot mix positional (?) and named (:name) parameters",
                    token.line, token.column)
            index = self._positional_params
            self._positional_params += 1
            return Parameter(index)
        if self._positional_params:
            raise SqlSyntaxError(
                "cannot mix positional (?) and named (:name) parameters",
                token.line, token.column)
        index = self._named_params.setdefault(token.value,
                                              len(self._named_params))
        return Parameter(index, token.value)

    def _parse_case(self) -> Expr:
        self.expect_keyword("case")
        if not self.current.matches_keyword("when"):
            raise self.error("only searched CASE (CASE WHEN ...) is supported")
        whens: list[tuple[Expr, Expr]] = []
        while self.accept_keyword("when"):
            condition = self.parse_expr()
            self.expect_keyword("then")
            value = self.parse_expr()
            whens.append((condition, value))
        otherwise = self.parse_expr() if self.accept_keyword("else") else None
        self.expect_keyword("end")
        return CaseExpr(tuple(whens), otherwise)
