"""Parameterized plan cache: LRU over compiled query plans.

Prepared statements and transparently-cached ad-hoc queries both land here.
A cache entry holds everything needed to re-execute a statement without
repeating parse → bind → normalize → optimize → compile: the optimized
physical plan, the prepared executable, the output schema and the parameter
list.  Entries are keyed on the *token-normalized* SQL text (whitespace,
comments and letter case of keywords do not fragment the cache), the
execution-mode name, the execution engine the plan was compiled for, and
the catalog schema version at plan time.

Soundness comes from three mechanisms:

* **Schema versioning** — the key embeds ``catalog.version``; any DDL bumps
  it, so post-DDL lookups miss and replan against the new schema.
* **Explicit invalidation** — DDL entry points also call
  :meth:`PlanCache.invalidate`, dropping entries eagerly instead of letting
  them age out of the LRU.
* **Statistics drift** — each entry snapshots the row counts of the tables
  it references (:mod:`repro.stats_version`); a hit whose snapshot drifted
  beyond the threshold is discarded and replanned, so a plan costed against
  an empty table does not survive a bulk load.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from . import faultinject
from .concurrency import TrackedLock
from .errors import SqlSyntaxError
from .sql.lexer import TokenType, tokenize
from .stats_version import (DEFAULT_DRIFT_THRESHOLD, StatsSnapshot, capture,
                            drifted)


def normalize_sql_key(sql: str) -> Hashable:
    """A cache key for ``sql`` insensitive to whitespace and keyword case.

    Built from the token stream, so ``SELECT  1`` and ``select 1`` share an
    entry while ``select 1`` and ``select 2`` do not.  Unlexable text gets
    the raw string as its key: the subsequent parse will raise the real
    syntax error, and caching never masks it.  Only genuine syntax errors
    are absorbed — a lexer *bug* (any non-:class:`SqlSyntaxError`)
    propagates instead of being silently cached under the raw string.
    """
    try:
        tokens = tokenize(sql)
    except SqlSyntaxError:
        return sql
    return tuple((t.type.value, t.value) for t in tokens
                 if t.type is not TokenType.EOF)


@dataclass
class CachedPlan:
    """One compiled statement: plan, executable, schema, provenance."""

    sql_key: Hashable
    mode_name: str
    catalog_version: int
    names: list[str]
    types: list[Any]
    parameters: tuple
    plan: Any
    rel: Any
    executable: Any
    snapshot: StatsSnapshot
    #: Execution engine the ``executable`` was prepared for ("tuple" or
    #: "vectorized").  Part of the cache key: the two engines compile the
    #: same physical plan into incompatible executables (row iterators vs
    #: batch iterators), so entries must never collide across engines.
    engine: str = "tuple"
    table_names: frozenset[str] = field(default_factory=frozenset)
    #: True when the entry came out of the graceful-degradation ladder
    #: (heuristic plan or naive interpretation).  Degraded entries are
    #: returned to the caller but never admitted into the cache.
    degraded: bool = False
    fallback_reason: str | None = None
    #: Set by the feedback loop (:mod:`repro.feedback`) when this plan's
    #: observed max Q-error exceeded the staleness threshold.  The next
    #: cache lookup discards the entry and replans against the corrected
    #: statistics.  Flagging never touches the entry's plan or
    #: executable, so executions already holding the entry are
    #: unaffected (plans are immutable once built).
    feedback_stale: bool = False
    #: Cache hits served for this entry, incremented under the owning
    #: shard's lock.  The materialized-view advisor mines this as its
    #: query-frequency signal (repro.matview.advisor).
    hits: int = 0
    #: When the plan was transparently rewritten to scan a materialized
    #: view: the view's name and the rewritten SQL it was compiled from
    #: (both ``None`` for unrewritten plans).  Surfaced by EXPLAIN.
    matview_name: str | None = None
    rewritten_sql: str | None = None
    #: The query's canonical aggregate fingerprint
    #: (:class:`repro.matview.canonical.CanonicalAggregate`) when it has
    #: one — the advisor's matching signal; ``None`` otherwise.
    fingerprint: Any = None

    @property
    def key(self) -> tuple:
        return (self.sql_key, self.mode_name, self.engine,
                self.catalog_version)


@dataclass
class CacheStats:
    """Observable cache behaviour, for tests and monitoring.

    The owning cache updates counters under a dedicated stats lock, so
    concurrent sessions never lose increments.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    stale: int = 0
    #: entries refused admission by the cache's validator hook
    rejected: int = 0
    #: entries discarded because runtime feedback flagged their plan
    #: (max Q-error over threshold; see repro.feedback)
    feedback_stale: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0
        self.invalidations = self.stale = self.rejected = 0
        self.feedback_stale = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations, "stale": self.stale,
                "rejected": self.rejected,
                "feedback_stale": self.feedback_stale,
                "hit_rate": self.hit_rate}


class _Shard:
    """One lock-protected LRU segment of the cache."""

    __slots__ = ("lock", "entries")

    def __init__(self, index: int) -> None:
        self.lock = TrackedLock(f"plancache.shard:{index}")
        self.entries: OrderedDict[tuple, CachedPlan] = OrderedDict()


class PlanCache:
    """Lock-striped LRU cache of :class:`CachedPlan` entries.

    ``row_count_of`` supplies current table sizes for the drift test; pass
    ``None`` to disable staleness checking (entries then live until DDL
    invalidation or LRU eviction).

    Thread safety: entries are hashed across ``shards`` independent LRU
    segments, each guarded by its own lock, so concurrent sessions
    contend only when they touch the same stripe.  Capacity is divided
    evenly across shards — with the default single shard the eviction
    order is the exact global LRU; with more shards it is LRU per stripe
    (approximate global LRU), the standard striping trade-off.  The
    validator and staleness callbacks run *outside* the stripe locks:
    they may be slow (the static analyzer, row-count probes) and must not
    serialize unrelated lookups.
    """

    def __init__(self, capacity: int = 128,
                 row_count_of: Callable[[str], int] | None = None,
                 drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
                 validator: Callable[[CachedPlan], bool] | None = None,
                 shards: int = 1) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        if shards < 1:
            raise ValueError("plan cache needs at least 1 shard")
        shards = min(shards, capacity)
        self.capacity = capacity
        self.drift_threshold = drift_threshold
        self._row_count_of = row_count_of
        self._validator = validator
        self._shards = [_Shard(i) for i in range(shards)]
        self._shard_capacity = -(-capacity // shards)  # ceil
        self.stats = CacheStats()
        self._stats_lock = TrackedLock("plancache.stats")

    @property
    def shards(self) -> int:
        return len(self._shards)

    def _shard_for(self, key: tuple) -> _Shard:
        return self._shards[hash(key) % len(self._shards)]

    def _bump(self, field_name: str, n: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, field_name,
                    getattr(self.stats, field_name) + n)

    def __len__(self) -> int:
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += len(shard.entries)
        return total

    def __contains__(self, key: tuple) -> bool:
        shard = self._shard_for(key)
        with shard.lock:
            return key in shard.entries

    def get(self, sql_key: Hashable, mode_name: str,
            catalog_version: int,
            engine: str = "tuple") -> CachedPlan | None:
        """Look up a cached plan, applying LRU touch and staleness check."""
        faultinject.hit("plancache.get")
        key = (sql_key, mode_name, engine, catalog_version)
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
        if entry is None:
            self._bump("misses")
            return None
        if entry.feedback_stale:
            with shard.lock:
                if shard.entries.get(key) is entry:
                    del shard.entries[key]
            self._bump("feedback_stale")
            self._bump("misses")
            return None
        if self._is_stale(entry):
            with shard.lock:
                shard.entries.pop(key, None)
            self._bump("stale")
            self._bump("misses")
            return None
        with shard.lock:
            if key in shard.entries:
                shard.entries.move_to_end(key)
                entry.hits += 1
        self._bump("hits")
        return entry

    def put(self, entry: CachedPlan) -> None:
        faultinject.hit("plancache.put")
        if self._validator is not None and not self._validator(entry):
            self._bump("rejected")
            return
        key = entry.key
        shard = self._shard_for(key)
        evicted = 0
        with shard.lock:
            if key in shard.entries:
                shard.entries.move_to_end(key)
            shard.entries[key] = entry
            while len(shard.entries) > self._shard_capacity:
                shard.entries.popitem(last=False)
                evicted += 1
        if evicted:
            self._bump("evictions", evicted)

    def invalidate(self, table_name: str | None = None) -> int:
        """Drop cached plans; all of them, or those touching one table.

        Returns the number of entries removed.  Called from every DDL
        entry point — the schema-version key component already guarantees
        correctness, so this is about reclaiming memory eagerly rather
        than stranding dead entries until LRU eviction.
        """
        removed = 0
        for shard in self._shards:
            with shard.lock:
                if table_name is None:
                    removed += len(shard.entries)
                    shard.entries.clear()
                else:
                    wanted = table_name.lower()
                    doomed = [key for key, entry in shard.entries.items()
                              if wanted in entry.table_names]
                    for key in doomed:
                        del shard.entries[key]
                    removed += len(doomed)
        if removed:
            self._bump("invalidations", removed)
        return removed

    def entries(self) -> list[CachedPlan]:
        """A point-in-time list of every cached entry (all shards)."""
        collected: list[CachedPlan] = []
        for shard in self._shards:
            with shard.lock:
                collected.extend(shard.entries.values())
        return collected

    def capture_snapshot(self,
                         table_names: Sequence[str]) -> StatsSnapshot:
        """Snapshot current row counts for a new entry's staleness check."""
        if self._row_count_of is None:
            return StatsSnapshot({})
        return capture(self._row_count_of, table_names)

    def _is_stale(self, entry: CachedPlan) -> bool:
        if self._row_count_of is None:
            return False
        return drifted(entry.snapshot, self._row_count_of,
                       self.drift_threshold)
