"""Columnar table storage with copy-on-write versions and a row façade.

Data lives natively in a :class:`~repro.storage.columnar.ColumnStore` —
sealed, encoded column chunks with zone maps plus a mutable tail (see
:mod:`repro.storage.columnar`).  Logically, rows are still Python tuples
in declaration order: :attr:`StoredTable.rows` is a :class:`RowView`
sequence façade over the store, so the tuple/naive engines, the WAL and
checkpoint codecs, and the index machinery keep operating on tuples
while the vectorized engine scans the chunks directly
(:meth:`StoredTable.scan_units`).  The store validates types and NOT
NULL constraints on insert, enforces primary/unique keys through hash
indexes, and maintains any secondary indexes declared in the catalog.

Concurrency model (the substrate of :mod:`repro.server` snapshot
isolation): a :class:`StoredTable` is one *version* of a table's data.
Committed writes never mutate an installed version in place — they
:meth:`~StoredTable.clone` it, apply the changes to the private copy and
atomically *install* the copy as the new current version
(:meth:`Storage.install`), serialized by a per-table writer lock
(:meth:`Storage.writer_lock`).  Readers pin an immutable view of all
current versions with :meth:`Storage.snapshot`; anything they pinned stays
valid and unchanged for as long as they hold it, no matter how many
writers commit after them.
"""

from __future__ import annotations

from collections import abc
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .. import faultinject
from ..algebra.datatypes import value_matches_type
from ..catalog.catalog import IndexDef, TableDef
from ..catalog.statistics import TableStats, compute_table_stats
from ..concurrency import TrackedLock, TrackedRLock
from ..errors import ExecutionError, TransactionConflict
from .columnar import DEFAULT_CHUNK_ROWS, ColumnStore, ScanUnit

#: Bound on autocommit writer-lock acquisition (seconds).  Generous —
#: an autocommit insert behind a slow checkpoint should wait, not
#: flake — but finite, so a leaked writer lock surfaces as a
#: :class:`TransactionConflict` instead of a hung thread.
AUTOCOMMIT_LOCK_TIMEOUT = 30.0


class RowView(abc.Sequence):
    """A read-only tuple-sequence façade over a :class:`ColumnStore`.

    Everything that used to consume ``StoredTable.rows`` as a plain list
    — engine scans, index rebuilds, checkpoint/WAL codecs, statistics —
    keeps working: iteration, ``len``, integer indexing, slicing and
    element-wise equality against lists/tuples all behave like the row
    list did.
    """

    __slots__ = ("_store",)

    def __init__(self, store: ColumnStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[tuple]:
        return self._store.iter_rows()

    def __getitem__(self, item):
        store = self._store
        if isinstance(item, slice):
            return [store.row(i)
                    for i in range(*item.indices(len(store)))]
        index = item.__index__()
        if index < 0:
            index += len(store)
        if not 0 <= index < len(store):
            raise IndexError("row index out of range")
        return store.row(index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (list, tuple, RowView)):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(a == b for a, b in zip(self, other))

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"RowView({list(self)!r})"


class StoredTable:
    """Columnar data plus indexes for one table (one version)."""

    def __init__(self, definition: TableDef,
                 chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        self.definition = definition
        self._store = ColumnStore(len(definition.columns), chunk_rows)
        self._row_view = RowView(self._store)
        self._indexes: dict[str, Any] = {}
        self._key_indexes: list[Any] = []
        self._stats_cache: TableStats | None = None
        from .index import HashIndex  # deferred: keep import graph simple
        for key in definition.all_keys():
            positions = [definition.column_index(name) for name in key]
            self._key_indexes.append(HashIndex(positions))

    @property
    def rows(self) -> RowView:
        """The table as a sequence of row tuples (the row façade)."""
        return self._row_view

    # -- mutation ---------------------------------------------------------------

    def insert(self, values: Sequence[Any] | Mapping[str, Any]) -> tuple:
        row = self._coerce(values)
        self._check_types(row)
        self._check_keys(row)
        position = len(self._store)
        self._store.append(row)
        for index in self._key_indexes:
            index.insert(row, position)
        for index in self._indexes.values():
            index.insert(row, position)
        self._stats_cache = None
        return row

    def insert_rows(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]
                    ) -> list[tuple]:
        """Insert a batch and return the coerced stored tuples — the
        exact form commit paths log to the write-ahead log."""
        return [self.insert(values) for values in rows]

    def insert_many(self, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        return len(self.insert_rows(rows))

    def _coerce(self, values: Sequence[Any] | Mapping[str, Any]) -> tuple:
        definition = self.definition
        if isinstance(values, Mapping):
            unknown = set(values) - set(definition.column_names)
            if unknown:
                raise ExecutionError(
                    f"unknown columns for {definition.name!r}: {sorted(unknown)}")
            return tuple(values.get(c.name) for c in definition.columns)
        row = tuple(values)
        if len(row) != len(definition.columns):
            raise ExecutionError(
                f"table {definition.name!r} expects {len(definition.columns)} "
                f"values, got {len(row)}")
        return row

    def _check_types(self, row: tuple) -> None:
        for value, column in zip(row, self.definition.columns):
            if value is None and not column.nullable:
                raise ExecutionError(
                    f"NULL in NOT NULL column {column.name!r} "
                    f"of table {self.definition.name!r}")
            if not value_matches_type(value, column.dtype):
                raise ExecutionError(
                    f"value {value!r} does not match type {column.dtype} "
                    f"of column {column.name!r}")

    def _check_keys(self, row: tuple) -> None:
        for index in self._key_indexes:
            key = index.key_of(row)
            if any(part is None for part in key):
                continue
            if index.lookup(key):
                raise ExecutionError(
                    f"duplicate key {key!r} in table {self.definition.name!r}")

    # -- access -----------------------------------------------------------------

    def scan(self) -> Iterator[tuple]:
        return self._store.iter_rows()

    def columns(self) -> list[list]:
        """The whole table pivoted to columnar form: one value list per
        declared column, aligned by row position (fresh lists)."""
        return self._store.columns()

    def scan_units(self) -> list[ScanUnit]:
        """Every storage chunk (sealed + tail) with its zone maps — the
        vectorized engine's native scan entry point."""
        return self._store.scan_units()

    def column_chunks(self, batch_size: int) -> Iterator[tuple[list[list], int]]:
        """Yield ``(columns, nrows)`` chunks of at most ``batch_size`` rows.

        Chunks follow storage-chunk boundaries: a storage chunk wider
        than ``batch_size`` is sliced, one that fits is yielded whole
        (sharing the chunk's cached decoded lists, no copy).  The last
        piece of each storage chunk may be short; an empty table yields
        nothing.
        """
        if batch_size < 1:
            raise ExecutionError("batch_size must be at least 1")
        for unit in self._store.scan_units():
            cols = unit.columns()
            total = unit.nrows
            if total <= batch_size:
                yield cols, total
                continue
            for start in range(0, total, batch_size):
                stop = min(start + batch_size, total)
                yield [col[start:stop] for col in cols], stop - start

    def seal(self, encodings: Sequence[str] | None = None) -> None:
        """Seal the mutable tail into an encoded chunk (test hook; the
        store also seals automatically every ``chunk_rows`` inserts)."""
        self._store.seal_tail(encodings)

    def force_encodings(self, encodings: Sequence[str]) -> None:
        """Re-encode every chunk with fixed per-column encodings (test
        hook for the differential encoding sweep)."""
        self._store.force_encodings(encodings)

    def __len__(self) -> int:
        return len(self._store)

    # -- secondary indexes --------------------------------------------------------

    def add_index(self, index_def: IndexDef) -> None:
        from .index import HashIndex, OrderedIndex

        positions = [self.definition.column_index(name)
                     for name in index_def.column_names]
        index = (HashIndex(positions) if index_def.kind == "hash"
                 else OrderedIndex(positions))
        index.rebuild(self.rows)
        self._indexes[index_def.name.lower()] = index

    def index(self, name: str):
        return self._indexes.get(name.lower())

    def key_lookup_index(self, column_names: Sequence[str]):
        """An index (declared key or secondary) exactly on ``column_names``.

        Order-insensitive for hash indexes: equality lookup does not care
        about column order, so we match as a set and report the index's own
        column order for key construction.
        """
        wanted = [self.definition.column_index(n) for n in column_names]
        wanted_set = set(wanted)
        for index in self._key_indexes:
            if set(index.positions) == wanted_set:
                return index
        for index in self._indexes.values():
            if set(index.positions) == wanted_set:
                return index
        return None

    # -- versioning ---------------------------------------------------------------

    def clone(self) -> "StoredTable":
        """An independent copy-on-write successor of this version.

        Sealed chunks are shared outright (they are immutable, decode /
        pivot caches included); only the mutable tail and the indexes
        are copied, so inserts into the clone are invisible to readers
        of this version.  Statistics are shared until the clone's first
        insert drops them (they describe identical data at clone time).
        """
        new = StoredTable.__new__(StoredTable)
        new.definition = self.definition
        new._store = self._store.clone()
        new._row_view = RowView(new._store)
        new._indexes = {name: index.clone()
                        for name, index in self._indexes.items()}
        new._key_indexes = [index.clone() for index in self._key_indexes]
        new._stats_cache = self._stats_cache
        return new

    # -- statistics ---------------------------------------------------------------

    def statistics(self) -> TableStats:
        if self._stats_cache is None:
            self._stats_cache = compute_table_stats(
                self.definition.column_names, self.rows)
        return self._stats_cache


class StorageSnapshot:
    """An immutable view of table versions pinned at one instant.

    Satisfies the reader protocol executors use (``get``), so a query can
    run entirely against the snapshot while writers install new versions
    in the owning :class:`Storage`.  ``data_version`` is the storage's
    commit counter at pin time.
    """

    __slots__ = ("_tables", "data_version")

    def __init__(self, tables: Mapping[str, StoredTable],
                 data_version: int) -> None:
        self._tables = dict(tables)
        self.data_version = data_version

    def get(self, name: str) -> StoredTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise ExecutionError(
                f"no storage for table {name!r} in this snapshot") from None

    def get_or_none(self, name: str) -> StoredTable | None:
        return self._tables.get(name.lower())

    def table_names(self) -> list[str]:
        return sorted(self._tables)


class Storage:
    """All stored tables of one database, versioned copy-on-write.

    The table map is guarded by an internal lock; individual installed
    :class:`StoredTable` versions are treated as immutable by committed
    writers (see the module docstring).  ``data_version`` counts installs
    — every committed write bumps it, which is what lets the plan cache
    and session machinery notice data movement cheaply.
    """

    def __init__(self, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        self.chunk_rows = chunk_rows
        self._tables: dict[str, StoredTable] = {}
        self._lock = TrackedRLock("storage.tables")
        # Plain (non-reentrant) locks, deliberately: two transactions
        # driven by the same thread must still conflict rather than both
        # "holding" the lock, and a server may acquire on a worker thread
        # and release on the connection thread at commit.
        self._writer_locks: dict[str, TrackedLock] = {}
        self.data_version = 0
        #: Write-ahead hook (duck-typed ``log_commit``), set by a
        #: durable :class:`~repro.database.Database`.  ``None`` — the
        #: default — keeps the store purely in-memory; nothing else in
        #: this module changes behavior.
        self.wal = None
        #: Materialized-view maintenance hook (duck-typed
        #: ``prepare_commit``), set by :class:`~repro.database.Database`.
        #: Commits that insert into a view's base table fold the delta
        #: into the view backing *inside the same install*, so readers
        #: never observe a base/view mismatch.  ``None`` disables
        #: maintenance entirely.
        self.matviews = None

    def create(self, definition: TableDef) -> StoredTable:
        key = definition.name.lower()
        with self._lock:
            if key in self._tables:
                raise ExecutionError(
                    f"storage for {definition.name!r} exists")
            table = StoredTable(definition, self.chunk_rows)
            self._tables[key] = table
            self._writer_locks.setdefault(
                key, TrackedLock(f"storage.writer:{key}"))
            self.data_version += 1
            return table

    def get(self, name: str) -> StoredTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise ExecutionError(f"no storage for table {name!r}") from None

    def drop(self, name: str) -> None:
        with self._lock:
            self._tables.pop(name.lower(), None)
            self._writer_locks.pop(name.lower(), None)
            self.data_version += 1

    # -- concurrency --------------------------------------------------------------

    def snapshot(self) -> StorageSnapshot:
        """Pin the current version of every table (readers' entry point)."""
        with self._lock:
            return StorageSnapshot(self._tables, self.data_version)

    def writer_lock(self, name: str) -> TrackedLock:
        """The single-writer-per-table lock serializing installs."""
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                raise ExecutionError(
                    f"no storage for table {name!r}")
            return self._writer_locks.setdefault(
                key, TrackedLock(f"storage.writer:{key}"))

    def all_writer_locks(self) -> list[tuple[str, TrackedLock]]:
        """Every table's writer lock, sorted by name — the checkpointer
        acquires them all (in this deterministic order) to quiesce
        commits without blocking readers."""
        with self._lock:
            return sorted(self._writer_locks.items())

    def install(self, name: str, table: StoredTable) -> None:
        """Atomically publish ``table`` as the current version of ``name``.

        Callers must hold the table's writer lock.
        """
        self.install_many({name: table})

    def install_many(self, tables: Mapping[str, StoredTable],
                     changes: Mapping[str, Sequence[tuple]] | None = None
                     ) -> None:
        """Atomically publish new versions for several tables at once
        (one transaction commit = one install, one version bump).

        Callers must hold every affected table's writer lock.  The
        injection point fires *before* the map is touched and the
        existence check covers every table before any is swapped, so a
        failed commit installs nothing — readers see either all of the
        transaction's versions or none of them.

        ``changes`` carries the transaction's logical row deltas (table
        → inserted tuples).  On a durable database they are appended to
        the write-ahead log — and fsynced — strictly *before* the
        install (WAL-before-install): a commit whose log write fails
        installs nothing, and a crash between log and install replays
        the commit at recovery.

        When a materialized-view hook is set, the deltas are first
        folded into new versions of the affected view backings
        (acquiring each view's writer lock), and those versions join the
        same swap.  The WAL still records only the base-table deltas:
        recovery re-derives view contents, so a crash anywhere in here
        can never persist a view inconsistent with its base.
        """
        keys = {name.lower(): table for name, table in tables.items()}
        with self._lock:
            for key in keys:
                if key not in self._tables:
                    raise ExecutionError(f"no storage for table {key!r}")
        maintenance = None
        if self.matviews is not None and changes:
            maintenance = self.matviews.prepare_commit(keys, changes)
        try:
            if maintenance is not None:
                keys.update(maintenance.versions)
            if self.wal is not None and changes:
                self.wal.log_commit(changes)
            faultinject.hit("snapshot.install")
            with self._lock:
                for key in keys:
                    if key not in self._tables:
                        raise ExecutionError(
                            f"no storage for table {key!r}")
                for key, table in keys.items():
                    self._tables[key] = table
                self.data_version += 1
        finally:
            if maintenance is not None:
                maintenance.release()

    def apply_insert(self, name: str,
                     rows: Iterable[Sequence[Any] | Mapping[str, Any]]
                     ) -> int:
        """Copy-on-write autocommit insert: clone, insert, install.

        Constraint violations raise before anything is installed (and
        before anything is logged), so a failed batch leaves the table
        exactly as it was (all-or-nothing), and concurrent readers
        holding snapshots never observe a partially-applied batch.
        """
        lock = self.writer_lock(name)
        if not lock.acquire(timeout=AUTOCOMMIT_LOCK_TIMEOUT):
            raise TransactionConflict(
                f"could not acquire the writer lock on table {name!r} "
                f"within {AUTOCOMMIT_LOCK_TIMEOUT:.0f}s (autocommit "
                f"insert)")
        try:
            version = self.get(name).clone()
            inserted = version.insert_rows(rows)
            self.install_many({name: version}, changes={name: inserted})
            return len(inserted)
        finally:
            lock.release()

    def apply_add_index(self, name: str, index_def: IndexDef) -> None:
        """Copy-on-write index creation (DDL autocommits)."""
        lock = self.writer_lock(name)
        if not lock.acquire(timeout=AUTOCOMMIT_LOCK_TIMEOUT):
            raise TransactionConflict(
                f"could not acquire the writer lock on table {name!r} "
                f"within {AUTOCOMMIT_LOCK_TIMEOUT:.0f}s (create index)")
        try:
            version = self.get(name).clone()
            version.add_index(index_def)
            self.install(name, version)
        finally:
            lock.release()
