"""Storage substrate: columnar chunk store with a row façade, hash and
ordered indexes, per-chunk encodings and zone maps."""

from .columnar import (DEFAULT_CHUNK_ROWS, ColumnChunk, ColumnStore,
                       ScanUnit, ZoneMap)
from .index import HashIndex, OrderedIndex
from .table import RowView, Storage, StoredTable

__all__ = ["DEFAULT_CHUNK_ROWS", "ColumnChunk", "ColumnStore", "HashIndex",
           "OrderedIndex", "RowView", "ScanUnit", "Storage", "StoredTable",
           "ZoneMap"]
