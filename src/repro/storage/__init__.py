"""Storage substrate: in-memory row store with hash and ordered indexes."""

from .index import HashIndex, OrderedIndex
from .table import Storage, StoredTable

__all__ = ["HashIndex", "OrderedIndex", "Storage", "StoredTable"]
