"""In-memory index structures.

Two kinds back the catalog's :class:`~repro.catalog.IndexDef`:

* :class:`HashIndex` — dict-based, equality lookups in O(1);
* :class:`OrderedIndex` — sorted array with binary search, supporting both
  equality and range scans.

Indexes store *row positions* into the owning table's row list, so they stay
valid as long as the table is append-only (deletes rebuild).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Sequence


class HashIndex:
    """Equality index mapping key tuples to row positions."""

    def __init__(self, positions: Sequence[int]) -> None:
        self.positions = tuple(positions)  # column positions forming the key
        self._buckets: dict[tuple, list[int]] = {}

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[p] for p in self.positions)

    def insert(self, row: tuple, row_position: int) -> None:
        self._buckets.setdefault(self.key_of(row), []).append(row_position)

    def lookup(self, key: tuple) -> list[int]:
        """Row positions whose key equals ``key`` (NULL never matches)."""
        if any(part is None for part in key):
            return []
        return self._buckets.get(tuple(key), [])

    def rebuild(self, rows: Sequence[tuple]) -> None:
        self._buckets.clear()
        for position, row in enumerate(rows):
            self.insert(row, position)

    def clone(self) -> "HashIndex":
        """An independent copy (for copy-on-write table versions)."""
        new = HashIndex(self.positions)
        new._buckets = {key: list(positions)
                        for key, positions in self._buckets.items()}
        return new

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class OrderedIndex:
    """Sorted index supporting equality and range scans.

    Rows whose key contains NULL are excluded (SQL comparisons with NULL
    never evaluate TRUE, so they can never match a seek predicate).
    """

    def __init__(self, positions: Sequence[int]) -> None:
        self.positions = tuple(positions)
        self._entries: list[tuple[tuple, int]] = []
        self._sorted = True

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[p] for p in self.positions)

    def insert(self, row: tuple, row_position: int) -> None:
        key = self.key_of(row)
        if any(part is None for part in key):
            return
        self._entries.append((key, row_position))
        self._sorted = False

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._entries.sort(key=lambda e: e[0])
            self._sorted = True

    def lookup(self, key: tuple) -> list[int]:
        if any(part is None for part in key):
            return []
        self._ensure_sorted()
        key = tuple(key)
        lo = bisect.bisect_left(self._entries, (key, -1))
        result = []
        for i in range(lo, len(self._entries)):
            entry_key, position = self._entries[i]
            if entry_key != key:
                break
            result.append(position)
        return result

    def range_scan(self, low: tuple | None = None, high: tuple | None = None,
                   low_inclusive: bool = True,
                   high_inclusive: bool = True) -> Iterator[int]:
        """Row positions with key in the given (prefix) range, in key order."""
        self._ensure_sorted()
        if low is None:
            start = 0
        else:
            low = tuple(low)
            if low_inclusive:
                start = bisect.bisect_left(self._entries, (low, -1))
            else:
                start = bisect.bisect_right(
                    self._entries, (low + (_INFINITY,), float("inf")))
        for i in range(start, len(self._entries)):
            entry_key, position = self._entries[i]
            if high is not None:
                prefix = entry_key[:len(high)]
                if high_inclusive:
                    if prefix > tuple(high):
                        break
                else:
                    if prefix >= tuple(high):
                        break
            yield position

    def rebuild(self, rows: Sequence[tuple]) -> None:
        self._entries.clear()
        for position, row in enumerate(rows):
            self.insert(row, position)
        self._sorted = False

    def clone(self) -> "OrderedIndex":
        """An independent copy (for copy-on-write table versions)."""
        new = OrderedIndex(self.positions)
        new._entries = list(self._entries)
        new._sorted = self._sorted
        return new

    def __len__(self) -> int:
        return len(self._entries)


class _Infinity:
    """Sorts after every other value (used for exclusive lower bounds)."""

    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return True


_INFINITY = _Infinity()
