"""Native columnar chunk storage: lightweight encodings plus zone maps.

The unit of storage is the :class:`ColumnChunk` — an immutable horizontal
slice of a table holding one *encoded* array per column plus a
:class:`ZoneMap` (min / max / null count) per column.  A
:class:`ColumnStore` is a list of sealed chunks followed by a mutable
*tail* of plain per-column append lists; when the tail reaches
``chunk_rows`` it is sealed, which is when encodings are chosen:

* **RLE** when the tail is clustered — the number of equal-value runs is
  at most a quarter of the row count;
* **dictionary** when the column is low-NDV — at most an eighth as many
  distinct values as rows (TPC-H ``p_brand`` / ``l_shipmode`` territory);
* **plain** (a materialized list) otherwise, and as the fallback whenever
  values are unhashable or incomparable.

Encoding equality is deliberately stricter than ``==``: two values are
merged into one run / dictionary slot only when their *types* also match,
so ``1`` and ``1.0`` (equal, differently typed) round-trip bit-identically
through every encoding.

Zone maps support predicate skipping (Abadi et al., *Column-Stores vs.
Row-Stores*): :func:`compile_zone_filter` turns one conjunct into a
chunk-level test that returns True only when **no row in the chunk can
satisfy the conjunct** under SQL three-valued semantics.  The rules:

* comparison with a NULL literal/parameter never holds → always skip;
* an all-NULL chunk satisfies no comparison → always skip;
* a chunk whose min/max are unavailable (incomparable values) → never
  skip; a ``TypeError`` during the zone comparison → never skip;
* ``IS NULL`` skips iff ``null_count == 0``; ``IS NOT NULL`` skips iff
  ``null_count == nrows``.

Sealed chunks cache their decoded columns and their row pivot *per
chunk*, so appends to the tail never invalidate cold chunks, and clones
(:meth:`ColumnStore.clone`) share sealed chunks — and their caches —
outright.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from .. import faultinject
from ..algebra.scalar import (Comparison, ColumnRef, IsNull, Literal,
                              Parameter, ScalarExpr, parameter_slot)

#: Rows per sealed chunk.  4096 keeps whole-chunk decode well above the
#: vectorized batch size while bounding the re-encode cost of a seal.
DEFAULT_CHUNK_ROWS = 4096

#: The encodings :meth:`ColumnStore.force_encodings` accepts.
ENCODINGS = ("plain", "dict", "rle")


# ---------------------------------------------------------------------------
# Zone maps
# ---------------------------------------------------------------------------

class ZoneMap:
    """Min / max / null statistics for one column of one chunk.

    ``min``/``max`` cover non-NULL values only and are ``None`` when the
    chunk has no non-NULL values *or* the values do not compare cleanly
    (then pruning must not trust them).  ``null_count`` is always exact,
    so NULL-based pruning stays valid even when min/max are unavailable.
    """

    __slots__ = ("min", "max", "null_count", "nrows")

    def __init__(self, lo: Any, hi: Any, null_count: int, nrows: int) -> None:
        self.min = lo
        self.max = hi
        self.null_count = null_count
        self.nrows = nrows

    def __repr__(self) -> str:
        return (f"ZoneMap(min={self.min!r}, max={self.max!r}, "
                f"nulls={self.null_count}/{self.nrows})")


def compute_zone(values: Sequence[Any]) -> ZoneMap:
    """The zone map of one column slice."""
    nulls = 0
    lo: Any = None
    hi: Any = None
    try:
        for value in values:
            if value is None:
                nulls += 1
            elif lo is None:
                lo = hi = value
            elif value < lo:
                lo = value
            elif hi < value:
                hi = value
    except TypeError:
        # Incomparable values: keep the exact null count, drop min/max.
        return ZoneMap(None, None,
                       sum(1 for v in values if v is None), len(values))
    return ZoneMap(lo, hi, nulls, len(values))


# ---------------------------------------------------------------------------
# Encodings
# ---------------------------------------------------------------------------

def _typed(value: Any) -> tuple[type, Any]:
    """A dictionary/distinct key that keeps ``1`` and ``1.0`` apart."""
    return (value.__class__, value)


class PlainColumn:
    """No encoding: the values themselves."""

    __slots__ = ("values",)
    kind = "plain"

    def __init__(self, values: Sequence[Any]) -> None:
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)

    def decode(self) -> list[Any]:
        return self.values


class DictColumn:
    """Dictionary encoding: first-occurrence-ordered values + codes."""

    __slots__ = ("codes", "values")
    kind = "dict"

    def __init__(self, values: Sequence[Any]) -> None:
        mapping: dict[tuple[type, Any], int] = {}
        dictionary: list[Any] = []
        codes: list[int] = []
        for value in values:
            key = _typed(value)
            code = mapping.get(key)
            if code is None:
                code = mapping[key] = len(dictionary)
                dictionary.append(value)
            codes.append(code)
        self.codes = codes
        self.values = dictionary

    def __len__(self) -> int:
        return len(self.codes)

    def decode(self) -> list[Any]:
        dictionary = self.values
        return [dictionary[code] for code in self.codes]


class RLEColumn:
    """Run-length encoding: ``(value, run_length)`` pairs."""

    __slots__ = ("runs", "nrows")
    kind = "rle"

    def __init__(self, values: Sequence[Any]) -> None:
        runs: list[tuple[Any, int]] = []
        current: Any = None
        count = 0
        for value in values:
            if count and value.__class__ is current.__class__ \
                    and value == current:
                count += 1
            else:
                if count:
                    runs.append((current, count))
                current = value
                count = 1
        if count:
            runs.append((current, count))
        self.runs = runs
        self.nrows = len(values)

    def __len__(self) -> int:
        return self.nrows

    def decode(self) -> list[Any]:
        out: list[Any] = []
        for value, count in self.runs:
            out.extend([value] * count)
        return out


EncodedColumn = PlainColumn | DictColumn | RLEColumn


def choose_encoding(values: Sequence[Any]) -> str:
    """Pick an encoding for one column slice (see the module docstring)."""
    nrows = len(values)
    if nrows < 16:
        return "plain"  # not worth the indirection
    try:
        runs = 1
        prev = values[0]
        for value in values[1:]:
            if value.__class__ is not prev.__class__ or value != prev:
                runs += 1
                prev = value
        if runs * 4 <= nrows:
            return "rle"
        distinct = len({_typed(v) for v in values})
        if distinct * 8 <= nrows:
            return "dict"
    except TypeError:
        return "plain"  # unhashable or incomparable values
    return "plain"


def encode_column(values: Sequence[Any],
                  kind: Optional[str] = None) -> Any:
    """Encode one column slice, falling back to plain when the requested
    (or chosen) encoding cannot represent the values."""
    if kind is None:
        kind = choose_encoding(values)
    try:
        if kind == "dict":
            return DictColumn(values)
        if kind == "rle":
            return RLEColumn(values)
    except TypeError:
        pass
    return PlainColumn(values)


# ---------------------------------------------------------------------------
# Chunks
# ---------------------------------------------------------------------------

class ColumnChunk:
    """One sealed, immutable horizontal slice of a table.

    Decoded columns and the row pivot are cached per chunk — the caches
    are derived, idempotent state, so sharing a chunk between table
    versions (and rebuilding a cache concurrently) is benign.
    """

    __slots__ = ("encoded", "zones", "nrows", "_decoded", "_rows")

    def __init__(self, encoded: tuple, zones: "tuple[ZoneMap, ...]",
                 nrows: int) -> None:
        self.encoded = encoded
        self.zones = zones
        self.nrows = nrows
        self._decoded: list[Optional[list]] = [None] * len(encoded)
        self._rows: Optional[list[tuple]] = None

    @property
    def encodings(self) -> tuple[str, ...]:
        return tuple(column.kind for column in self.encoded)

    def column(self, position: int) -> list[Any]:
        """The decoded value list of one column (cached)."""
        cached = self._decoded[position]
        if cached is None:
            faultinject.hit("columnar.decode")
            cached = self.encoded[position].decode()
            self._decoded[position] = cached
        return cached

    def columns(self) -> list[list[Any]]:
        return [self.column(i) for i in range(len(self.encoded))]

    def rows(self) -> list[tuple]:
        """The chunk pivoted to row tuples (cached)."""
        rows = self._rows
        if rows is None:
            columns = self.columns()
            rows = list(zip(*columns)) if columns else []
            self._rows = rows
        return rows


def seal_chunk(columns: Sequence[Sequence[Any]], nrows: int,
               kinds: Optional[Sequence[str]] = None) -> ColumnChunk:
    """Encode ``columns`` (each exactly ``nrows`` long) into a chunk."""
    encoded = tuple(
        encode_column(column, kinds[i] if kinds is not None else None)
        for i, column in enumerate(columns))
    zones = tuple(compute_zone(column) for column in columns)
    return ColumnChunk(encoded, zones, nrows)


class ScanUnit:
    """A scan-ready view of one chunk — sealed, or the (copied) tail."""

    __slots__ = ("zones", "nrows", "_chunk", "_cols")

    def __init__(self, zones: "tuple[ZoneMap, ...]", nrows: int,
                 chunk: Optional[ColumnChunk] = None,
                 cols: Optional[list[list[Any]]] = None) -> None:
        self.zones = zones
        self.nrows = nrows
        self._chunk = chunk
        self._cols = cols

    def columns(self) -> list[list[Any]]:
        if self._chunk is not None:
            return self._chunk.columns()
        assert self._cols is not None
        return self._cols


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

class ColumnStore:
    """Sealed chunks plus a mutable tail, for one table version.

    Appends go to per-column tail lists; reaching ``chunk_rows`` seals
    the tail into a :class:`ColumnChunk` (choosing encodings).  All
    derived tail state (zone maps, the row pivot, the scan unit) is
    cached keyed by the tail length, so it survives reads and is
    invalidated by the next append — installed versions never append,
    which makes their caches permanent.
    """

    __slots__ = ("ncols", "chunk_rows", "chunks", "_starts", "_sealed_rows",
                 "_tail", "_tail_len", "_tail_unit", "_tail_rows")

    def __init__(self, ncols: int,
                 chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1")
        self.ncols = ncols
        self.chunk_rows = chunk_rows
        self.chunks: list[ColumnChunk] = []
        self._starts: list[int] = []       # first row position per chunk
        self._sealed_rows = 0
        self._tail: list[list[Any]] = [[] for _ in range(ncols)]
        self._tail_len = 0
        self._tail_unit: Optional[tuple[int, ScanUnit]] = None
        self._tail_rows: Optional[tuple[int, list[tuple]]] = None

    def __len__(self) -> int:
        return self._sealed_rows + self._tail_len

    # -- writes -----------------------------------------------------------------

    def append(self, row: Sequence[Any]) -> None:
        for column, value in zip(self._tail, row):
            column.append(value)
        self._tail_len += 1
        if self._tail_len >= self.chunk_rows:
            self.seal_tail()

    def seal_tail(self, kinds: Optional[Sequence[str]] = None) -> None:
        """Seal the tail (if any) into an immutable encoded chunk."""
        nrows = self._tail_len
        if nrows == 0:
            return
        chunk = seal_chunk(self._tail, nrows, kinds)
        self._starts.append(self._sealed_rows)
        self.chunks.append(chunk)
        self._sealed_rows += nrows
        self._tail = [[] for _ in range(self.ncols)]
        self._tail_len = 0
        self._tail_unit = None
        self._tail_rows = None

    def force_encodings(self, kinds: Sequence[str]) -> None:
        """Re-seal every chunk (tail included) with fixed per-column
        encodings — the test hook behind the encoding differential sweep.
        Encodings that cannot represent the values fall back to plain."""
        if len(kinds) != self.ncols:
            raise ValueError(
                f"expected {self.ncols} encodings, got {len(kinds)}")
        for kind in kinds:
            if kind not in ENCODINGS:
                raise ValueError(f"unknown encoding {kind!r}")
        self.seal_tail(kinds)
        self.chunks = [seal_chunk(chunk.columns(), chunk.nrows, kinds)
                       for chunk in self.chunks]

    # -- reads ------------------------------------------------------------------

    def _tail_unit_now(self) -> Optional[ScanUnit]:
        nrows = self._tail_len
        if nrows == 0:
            return None
        cached = self._tail_unit
        if cached is not None and cached[0] == nrows:
            return cached[1]
        cols = [column[:nrows] for column in self._tail]
        unit = ScanUnit(tuple(compute_zone(c) for c in cols), nrows,
                        cols=cols)
        self._tail_unit = (nrows, unit)
        return unit

    def _tail_rows_now(self) -> list[tuple]:
        nrows = self._tail_len
        if nrows == 0:
            return []
        cached = self._tail_rows
        if cached is not None and cached[0] == nrows:
            return cached[1]
        rows = list(zip(*(column[:nrows] for column in self._tail)))
        self._tail_rows = (nrows, rows)
        return rows

    def scan_units(self) -> list[ScanUnit]:
        """Every chunk as a scan unit, in row-position order."""
        units = [ScanUnit(chunk.zones, chunk.nrows, chunk=chunk)
                 for chunk in self.chunks]
        tail = self._tail_unit_now()
        if tail is not None:
            units.append(tail)
        return units

    def row(self, position: int) -> tuple:
        if position < self._sealed_rows:
            index = bisect_right(self._starts, position) - 1
            chunk = self.chunks[index]
            return chunk.rows()[position - self._starts[index]]
        offset = position - self._sealed_rows
        if offset >= self._tail_len:
            raise IndexError("row position out of range")
        return self._tail_rows_now()[offset]

    def iter_rows(self) -> Iterator[tuple]:
        for chunk in self.chunks:
            yield from chunk.rows()
        tail = self._tail_rows_now()
        if tail:
            yield from tail

    def columns(self) -> list[list[Any]]:
        """The whole table pivoted columnar: fresh concatenated lists."""
        out: list[list[Any]] = [[] for _ in range(self.ncols)]
        for chunk in self.chunks:
            for acc, column in zip(out, chunk.columns()):
                acc.extend(column)
        nrows = self._tail_len
        if nrows:
            for acc, column in zip(out, self._tail):
                acc.extend(column[:nrows])
        return out

    # -- versioning -------------------------------------------------------------

    def clone(self) -> "ColumnStore":
        """A copy-on-write successor: sealed chunks (and their decode /
        pivot caches) are shared, tail lists are copied."""
        new = ColumnStore.__new__(ColumnStore)
        new.ncols = self.ncols
        new.chunk_rows = self.chunk_rows
        new.chunks = list(self.chunks)
        new._starts = list(self._starts)
        new._sealed_rows = self._sealed_rows
        new._tail = [list(column) for column in self._tail]
        new._tail_len = self._tail_len
        new._tail_unit = self._tail_unit
        new._tail_rows = self._tail_rows
        return new


# ---------------------------------------------------------------------------
# Zone-map predicate compilation
# ---------------------------------------------------------------------------

#: ``literal op column`` rewritten as ``column mirror(op) literal``.
_MIRROR = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

ZoneFilter = Callable[[Sequence[ZoneMap], Mapping[int, Any]], bool]


def _value_getter(expr: ScalarExpr, allow_params: bool
                  ) -> Optional[Callable[[Mapping[int, Any]], Any]]:
    if isinstance(expr, Literal):
        value = expr.value
        return lambda params: value
    if allow_params and isinstance(expr, Parameter):
        slot = parameter_slot(expr.index)
        return lambda params: params.get(slot)
    return None


def compile_zone_filter(conjunct: ScalarExpr, layout: Mapping[int, int],
                        allow_params: bool = True) -> Optional[ZoneFilter]:
    """A chunk-skip test for one conjunct, or ``None`` when the conjunct
    is not prunable.  The returned ``fn(zones, params) -> bool`` answers
    "can no row in this chunk make the conjunct TRUE?" — True means the
    chunk may be skipped."""
    if isinstance(conjunct, IsNull) and isinstance(conjunct.arg, ColumnRef):
        found = layout.get(conjunct.arg.column.cid)
        if found is None:
            return None
        null_pos = found  # narrowed rebinding: closures see a plain int
        if conjunct.negated:  # IS NOT NULL

            def prune_not_null(zones: Sequence[ZoneMap],
                               params: Mapping[int, Any]) -> bool:
                zone = zones[null_pos]
                return zone.null_count == zone.nrows

            return prune_not_null

        def prune_is_null(zones: Sequence[ZoneMap],
                          params: Mapping[int, Any]) -> bool:
            return zones[null_pos].null_count == 0

        return prune_is_null
    if not isinstance(conjunct, Comparison):
        return None
    op = conjunct.op
    if isinstance(conjunct.left, ColumnRef):
        column, value_expr = conjunct.left, conjunct.right
    elif isinstance(conjunct.right, ColumnRef):
        column, value_expr = conjunct.right, conjunct.left
        op = _MIRROR[op]
    else:
        return None
    if isinstance(value_expr, ColumnRef):
        return None  # column-vs-column: zones alone cannot decide
    maybe_position = layout.get(column.column.cid)
    if maybe_position is None:
        return None
    position = maybe_position  # narrowed rebinding for the closure
    maybe_getter = _value_getter(value_expr, allow_params)
    if maybe_getter is None:
        return None
    get_value = maybe_getter

    def prune(zones: Sequence[ZoneMap],
              params: Mapping[int, Any]) -> bool:
        value = get_value(params)
        if value is None:
            return True  # comparison with NULL is never TRUE
        zone = zones[position]
        if zone.null_count == zone.nrows:
            return True  # all-NULL chunk satisfies no comparison
        lo, hi = zone.min, zone.max
        if lo is None:
            return False  # min/max unavailable: cannot prune
        try:
            if op == "=":
                return value < lo or hi < value
            if op == "<":
                return not (lo < value)
            if op == "<=":
                return not (lo <= value)
            if op == ">":
                return not (value < hi)
            if op == ">=":
                return not (value <= hi)
            # "<>": skip only when every non-NULL value equals ``value``
            return bool(lo == value) and bool(hi == value)
        except TypeError:
            return False  # cross-type comparison: keep the chunk

    return prune


def compile_zone_filters(conjuncts: Sequence[ScalarExpr],
                         layout: Mapping[int, int],
                         allow_params: bool = True) -> list[ZoneFilter]:
    """Every prunable conjunct compiled; non-prunable ones are dropped
    (dropping is always safe — skipping stays conservative)."""
    out: list[ZoneFilter] = []
    for conjunct in conjuncts:
        compiled = compile_zone_filter(conjunct, layout, allow_params)
        if compiled is not None:
            out.append(compiled)
    return out
