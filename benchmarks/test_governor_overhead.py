"""Governor overhead — governed vs. ungoverned TPC-H Q17.

The resource governor is cooperative: scans whose size fits the row
budget are charged once at open time, streamed meters pull rows in
``islice`` chunks, and the monotonic clock is consulted only at chunk
boundaries — so a governed run with generous limits must track an
ungoverned run within 5%.  This benchmark pins that claim.

Methodology: single end-to-end timings at millisecond scale are noisy
(timer jitter, CPU frequency drift), so each sample times a batch of
executions, governed and ungoverned batches alternate back to back, and
the estimator is the *median of paired ratios* — drift hits both sides
of a pair equally and cancels.
"""

import statistics
import time

from repro import FULL
from repro.bench import tpch_database
from repro.tpch import QUERIES

SCALE_FACTOR = 0.01
BATCH = 8        # executions per timed sample
PAIRS = 12       # alternating (ungoverned, governed) sample pairs
MAX_OVERHEAD = 0.05


def test_governor_overhead_under_five_percent():
    db = tpch_database(SCALE_FACTOR)
    sql = QUERIES["Q17"]
    generous = dict(timeout=300.0, row_budget=10**12,
                    memory_budget=10**12)

    def sample(**limits):
        started = time.perf_counter()
        for _ in range(BATCH):
            db.execute(sql, FULL, **limits)
        return (time.perf_counter() - started) / BATCH

    # Warm both paths: plan-cache admission, storage caches.
    db.execute(sql, FULL)
    db.execute(sql, FULL, **generous)

    pairs = [(sample(), sample(**generous)) for _ in range(PAIRS)]
    overhead = statistics.median(g / u for u, g in pairs) - 1.0
    best_u = min(u for u, _ in pairs)
    best_g = min(g for _, g in pairs)

    print()
    print(f"Q17 @ sf={SCALE_FACTOR}: ungoverned best {best_u * 1e3:.2f} ms,"
          f" governed best {best_g * 1e3:.2f} ms,"
          f" median paired overhead {overhead:+.1%}")

    assert overhead <= MAX_OVERHEAD, (
        f"governor overhead {overhead:.1%} exceeds the "
        f"{MAX_OVERHEAD:.0%} target")
