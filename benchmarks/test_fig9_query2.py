"""Experiment E5 — Figure 9 (left): TPC-H Query 2 elapsed time.

Paper: Q2 elapsed power-run times across published 300 GB results, SQL
Server fastest on the fewest processors.  Same substitutions as the Q17
bench (scale factor for processors, optimizer configurations for systems).

Expected shape: the decorrelating configurations (FULL and
DECORRELATE_ONLY) beat correlated execution by a growing factor; FULL
tracks the best.
"""

import pytest

from repro import FULL
from repro.bench import (CONFIGURATIONS, run_matrix, series_table,
                         tpch_database)
from repro.tpch import QUERIES

SCALE_FACTORS = [0.002, 0.005, 0.01, 0.02]
HEADLINE_SF = 0.01


def test_fig9_query2_scaling(benchmark):
    measurements = run_matrix(QUERIES["Q2"], "Q2", SCALE_FACTORS,
                              CONFIGURATIONS, repeat=2)
    print()
    print("Figure 9 (left) — Q2 elapsed execution seconds")
    print(series_table(measurements))

    by_key = {(m.scale_factor, m.mode): m.elapsed_seconds
              for m in measurements}
    top = max(SCALE_FACTORS)
    assert by_key[(top, "full")] * 5 < by_key[(top, "correlated")]
    # FULL and DECORRELATE_ONLY both pick flattened plans for Q2; small
    # join-order differences from the bounded exploration leave them within
    # a small constant factor of each other (see EXPERIMENTS.md).
    assert by_key[(top, "full")] <= by_key[(top, "decorrelate_only")] * 3

    db = tpch_database(HEADLINE_SF)
    plan = db.plan(QUERIES["Q2"], FULL)
    from repro.executor.physical import PhysicalExecutor
    executor = PhysicalExecutor(db.storage)
    benchmark(lambda: executor.run(plan))
