"""Ablation A1 — Sections 3.1/3.2: GroupBy reordering on/off.

The paper: "it is these optimizations that make for the order-of-magnitude
performance improvements".  The probe query is the Section 1.1 example at a
threshold where the aggregate-then-join strategy prunes heavily, plus
TPC-H Q17, whose flattened form only becomes efficient once the GroupBy
moves below the join.
"""

import pytest

from repro import FULL
from repro.bench import (NO_GROUPBY_REORDER, format_table, time_query,
                         tpch_database)
from repro.tpch import QUERIES

SCALE_FACTOR = 0.01

PROBES = {
    "section 1.1 example": """
        select c_custkey from customer
        where 1000000 < (select sum(o_totalprice) from orders
                         where o_custkey = c_custkey)""",
    "TPC-H Q17": QUERIES["Q17"],
}


def test_ablation_groupby_reorder(benchmark):
    db = tpch_database(SCALE_FACTOR)
    rows = []
    for name, sql in PROBES.items():
        baseline = db.execute(sql, NO_GROUPBY_REORDER).rows
        optimized = db.execute(sql, FULL).rows
        assert sorted(map(repr, optimized)) == sorted(map(repr, baseline))
        _, exec_off, _ = time_query(db, sql, NO_GROUPBY_REORDER, repeat=2)
        _, exec_on, _ = time_query(db, sql, FULL, repeat=2)
        rows.append([name, f"{exec_on * 1000:.2f}", f"{exec_off * 1000:.2f}",
                     f"{exec_off / max(exec_on, 1e-9):.1f}x"])
    print()
    print(f"Ablation — GroupBy reordering (SF={SCALE_FACTOR})")
    print(format_table(
        ["query", "reorder on (ms)", "reorder off (ms)", "speedup"], rows))

    plan = db.plan(PROBES["section 1.1 example"], FULL)
    from repro.executor.physical import PhysicalExecutor
    executor = PhysicalExecutor(db.storage)
    benchmark(lambda: executor.run(plan))
