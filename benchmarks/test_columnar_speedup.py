"""Columnar storage speedup on the Q17-shaped grouped aggregate.

The tentpole claim of the native columnar layer: with storage already
chunked, encoded and decode-cached, the vectorized engine runs the
grouped aggregate at the heart of Q17's inner subquery at least 3x
faster than over a row-pivot baseline (the pre-columnar design, where
every query re-pivoted ``table.rows`` into columns).

Morsel parallelism is measured at 4 workers.  The ≥2x scaling claim
only holds on hardware that can actually run morsels concurrently —
≥4 cores with the GIL disabled — so on other hosts the numbers are
recorded in the artifact without asserting.

The run writes ``BENCH_columnar.json`` to the working directory — the
repository's BENCH trajectory artifact, uploaded by CI.
"""

import json
import pathlib

from repro.bench import columnar_speedup_report, columnar_speedup_table

SCALE_FACTOR = 0.01
MIN_COLUMNAR_SPEEDUP = 3.0
MIN_MORSEL_SCALING = 2.0


def test_columnar_speedup(benchmark):
    report = columnar_speedup_report(SCALE_FACTOR, repeat=3,
                                     morsel_workers=4)
    print()
    print(f"Columnar storage vs row-pivot baseline, sf={SCALE_FACTOR}")
    print(columnar_speedup_table(report))

    out = pathlib.Path("BENCH_columnar.json")
    out.write_text(json.dumps(report, indent=2) + "\n")

    assert report["columnar_speedup"] >= MIN_COLUMNAR_SPEEDUP, \
        f"columnar speedup {report['columnar_speedup']:.2f}x < " \
        f"{MIN_COLUMNAR_SPEEDUP}x"
    if report["parallel_effective"]:
        assert report["morsel_scaling"] >= MIN_MORSEL_SCALING, \
            f"morsel scaling {report['morsel_scaling']:.2f}x < " \
            f"{MIN_MORSEL_SCALING}x with {report['cpu_count']} cores"

    from repro import FULL
    from repro.bench import tpch_database
    from repro.executor import VectorizedExecutor
    db = tpch_database(SCALE_FACTOR)
    plan = db.plan(report["sql"], FULL)
    executor = VectorizedExecutor(db.storage)
    benchmark(lambda: executor.run(plan))
