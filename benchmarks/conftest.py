"""Shared benchmark configuration.

The benches print paper-style tables; run with ``-s`` to see them, e.g.::

    pytest benchmarks/ --benchmark-only -s

Scale factors are chosen so a full run stays in the minutes range on a
laptop while keeping execution time (not compile time) dominant.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "bench: paper-reproduction benchmark")
