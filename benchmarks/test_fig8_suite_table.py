"""Experiment E4 — Figure 8: the TPC-H results table.

Paper: the table of all published 300 GB TPC-H results (system, QphH,
price/QphH).  Substitution (DESIGN.md §3): rows become optimizer
configurations of this engine; the throughput metric becomes the geometric
mean of per-query elapsed execution time over the supported query suite at
a fixed scale factor.

Expected shape: FULL posts the best geomean, DECORRELATE_ONLY close behind
(flattening alone already removes the quadratic blow-ups), CORRELATED far
behind — mirroring the paper's "fastest on a fraction of the processors"
headline.
"""

import math

import pytest

from repro import FULL
from repro.bench import CONFIGURATIONS, format_table, time_query, \
    tpch_database
from repro.tpch import QUERIES

SCALE_FACTOR = 0.005

#: Queries whose plans are shaped by the paper's techniques (subqueries
#: and/or reorderable aggregation).  The remaining queries are join-order
#: workloads where all configurations share the same technique set; their
#: times are reported but not asserted (join enumeration under the memo
#: budget has plan-quality noise — see EXPERIMENTS.md).
SUBQUERY_SET = ("Q2", "Q4", "Q11", "Q13", "Q15", "Q16", "Q17", "Q18",
                "Q20", "Q21", "Q22")


def geomean(values):
    return math.exp(sum(math.log(max(v, 1e-6)) for v in values)
                    / len(values))


def test_fig8_suite_table(benchmark):
    db = tpch_database(SCALE_FACTOR)
    per_query: dict[str, dict[str, float]] = {}
    for name, sql in QUERIES.items():
        per_query[name] = {}
        for mode in CONFIGURATIONS:
            _, exec_s, _ = time_query(db, sql, mode)
            per_query[name][mode.name] = exec_s

    mode_names = [m.name for m in CONFIGURATIONS]
    rows = []
    for name in QUERIES:
        rows.append([name] + [f"{per_query[name][m] * 1000:.1f}"
                              for m in mode_names])
    overall = {m: geomean([per_query[q][m] for q in QUERIES])
               for m in mode_names}
    subquery = {m: geomean([per_query[q][m] for q in SUBQUERY_SET])
                for m in mode_names}
    rows.append(["geomean (all 22)"]
                + [f"{overall[m] * 1000:.1f}" for m in mode_names])
    rows.append(["geomean (subquery/agg)"]
                + [f"{subquery[m] * 1000:.1f}" for m in mode_names])

    print()
    print(f"Figure 8 analog — per-query elapsed ms, TPC-H SF={SCALE_FACTOR}")
    print(format_table(["query"] + mode_names, rows))

    # Shape (asserted on the subquery/aggregation subset, where the
    # paper's techniques actually differentiate the configurations): the
    # full system leads, correlated execution trails clearly, and the gap
    # concentrates exactly on the queries the paper highlights (Q2/Q17).
    assert subquery["full"] <= subquery["decorrelate_only"] * 1.25
    assert subquery["full"] * 2 < subquery["correlated"]
    for highlighted in ("Q2", "Q17"):
        assert per_query[highlighted]["full"] * 5 < \
            per_query[highlighted]["correlated"]

    plan = db.plan(QUERIES["Q2"], FULL)
    from repro.executor.physical import PhysicalExecutor
    executor = PhysicalExecutor(db.storage)
    benchmark(lambda: executor.run(plan))
