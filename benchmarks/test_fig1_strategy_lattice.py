"""Experiment E1 — Figure 1: the strategy lattice for the running example.

The paper's Figure 1 shows how primitive rewrites connect the classic
subquery strategies: correlated execution, Dayal's outerjoin-then-
aggregate, join-then-aggregate (after outerjoin simplification), and Kim's
aggregate-then-join (after GroupBy reordering).  Each box is a reachable,
executable configuration of this engine; all must return the same rows and
the cost-based FULL configuration must match the best of them.

Regenerates: per-strategy elapsed time for the Section 1.1 query
("customers who have ordered more than $1,000,000").
"""

from collections import Counter

import pytest

from repro import FULL, Database
from repro.bench import format_table, time_query, tpch_database
from repro.core.normalize import NormalizeConfig
from repro.core.optimizer import OptimizerConfig
from repro.database import ExecutionMode

SCALE_FACTOR = 0.01
THRESHOLD = 1000000.0

QUERY = f"""
    select c_custkey from customer
    where {THRESHOLD} < (select sum(o_totalprice) from orders
                         where o_custkey = c_custkey)
"""

#: One ExecutionMode per box of Figure 1.
STRATEGIES = {
    "correlated execution": ExecutionMode(
        "correlated",
        normalize_config=NormalizeConfig(decorrelate=False),
        optimizer_config=OptimizerConfig(
            groupby_reorder=False, segment_apply=False,
            local_aggregates=False, semijoin_rewrites=False,
            join_reorder=False, index_apply=False)),
    "correlated + index lookup": ExecutionMode(
        "correlated_index",
        normalize_config=NormalizeConfig(decorrelate=False),
        optimizer_config=OptimizerConfig(
            groupby_reorder=False, segment_apply=False,
            local_aggregates=False, semijoin_rewrites=False,
            join_reorder=False, index_apply=True)),
    "outerjoin then aggregate (Dayal)": ExecutionMode(
        "outerjoin_aggregate",
        normalize_config=NormalizeConfig(simplify_outerjoins=False),
        optimizer_config=OptimizerConfig(
            groupby_reorder=False, segment_apply=False,
            local_aggregates=False, semijoin_rewrites=False)),
    "join then aggregate (simplified)": ExecutionMode(
        "join_aggregate",
        optimizer_config=OptimizerConfig(
            groupby_reorder=False, segment_apply=False,
            local_aggregates=False, semijoin_rewrites=False)),
    "aggregate then join (Kim)": ExecutionMode(
        "aggregate_join",
        optimizer_config=OptimizerConfig(
            groupby_reorder=True, segment_apply=False,
            local_aggregates=False, semijoin_rewrites=False)),
    "cost-based (FULL)": FULL,
}


@pytest.fixture(scope="module")
def db() -> Database:
    return tpch_database(SCALE_FACTOR)


def test_fig1_strategy_lattice(db, benchmark):
    rows = []
    results = {}
    timings = {}
    for label, mode in STRATEGIES.items():
        plan_s, exec_s, count = time_query(db, QUERY, mode, repeat=2)
        rows.append([label, f"{exec_s * 1000:.1f}", f"{plan_s * 1000:.0f}",
                     count])
        results[label] = Counter(db.execute(QUERY, mode).rows)
        timings[label] = exec_s

    print()
    print(f"Figure 1 strategy lattice — paper Section 1.1 query, "
          f"TPC-H SF={SCALE_FACTOR}")
    print(format_table(
        ["strategy", "exec (ms)", "plan (ms)", "rows"], rows))

    # All strategies are equivalent formulations: identical result sets.
    reference = next(iter(results.values()))
    for label, result in results.items():
        assert result == reference, f"{label} diverged"

    # The paper's point: the cost-based engine with all primitives is at
    # least as good as (roughly) the best single strategy, and set-oriented
    # strategies beat plain correlated execution.
    best_fixed = min(v for k, v in timings.items()
                     if k != "cost-based (FULL)")
    assert timings["cost-based (FULL)"] <= best_fixed * 3 + 0.02
    assert timings["correlated execution"] > \
        timings["join then aggregate (simplified)"]

    plan = db.plan(QUERY, FULL)
    from repro.executor.physical import PhysicalExecutor
    executor = PhysicalExecutor(db.storage)
    benchmark(lambda: executor.run(plan))
