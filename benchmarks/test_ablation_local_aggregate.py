"""Ablation A2 — Section 3.3: local/global aggregate split on/off.

The probe groups a join result by a column that contains no key of either
side, so the *global* GroupBy cannot move below the join (condition 2 of
Section 3.1 fails) — exactly the case LocalGroupBy exists for: the local
aggregate can always push down, shrinking the join input.
"""

import pytest

from repro import FULL
from repro.bench import (NO_LOCAL_AGGREGATES, format_table, time_query,
                         tpch_database)
from repro.physical import PHashAggregate
from repro.tpch import QUERIES

SCALE_FACTOR = 0.01

PROBE = """
    select o_orderpriority, sum(l_quantity) as qty
    from orders, lineitem
    where l_orderkey = o_orderkey
    group by o_orderpriority
    order by o_orderpriority
"""


def _walk(plan):
    yield plan
    for child in plan.children:
        yield from _walk(child)


def test_ablation_local_aggregates(benchmark):
    db = tpch_database(SCALE_FACTOR)

    assert db.execute(PROBE, FULL).rows == \
        db.execute(PROBE, NO_LOCAL_AGGREGATES).rows

    rows = []
    for label, mode in (("local aggregates on", FULL),
                        ("local aggregates off", NO_LOCAL_AGGREGATES)):
        plan_s, exec_s, count = time_query(db, PROBE, mode, repeat=3)
        plan = db.plan(PROBE, mode)
        local_aggs = sum(1 for n in _walk(plan)
                         if isinstance(n, PHashAggregate) and n.is_local)
        rows.append([label, f"{exec_s * 1000:.1f}", local_aggs, count])
    print()
    print(f"Ablation — Local/global aggregate split (SF={SCALE_FACTOR})")
    print(format_table(
        ["configuration", "exec (ms)", "local aggs in plan", "rows"], rows))

    plan = db.plan(PROBE, FULL)
    from repro.executor.physical import PhysicalExecutor
    executor = PhysicalExecutor(db.storage)
    benchmark(lambda: executor.run(plan))
