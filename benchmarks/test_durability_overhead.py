"""Durability overhead: commit latency with the WAL on and off.

Runs an identical single-row autocommit workload against three
configurations of the same database — in-memory (no WAL), durable with
``fsync=False`` (the OS page cache absorbs the write) and durable with
``fsync=True`` (every commit waits for the disk) — and reports the
commit latency distribution for each.  The interesting number is the
no-fsync multiple: that is the pure bookkeeping cost of the log
(encode, CRC, write), while the fsync row mostly measures the storage
device and is reported but not bounded.

The run writes ``BENCH_durability.json`` to the working directory — the
repository's BENCH trajectory artifact, uploaded by CI.  The asserted
bound is deliberately generous (CI machines are noisy); the JSON
carries the real numbers.
"""

import json
import pathlib
import statistics
import time

from repro import Database, DataType

COMMITS = 300
WARMUP = 20
#: Upper bound on mean durable-no-fsync commit latency as a multiple of
#: the in-memory mean.  The honest ratio is far lower; the margin keeps
#: shared CI runners from flaking the build.
MAX_NOFSYNC_MULTIPLE = 25.0


def build_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.VARCHAR)],
                    primary_key=("a",))
    return db


def percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def measure_commits(db: Database) -> dict:
    """Time COMMITS single-row autocommit inserts, skipping a warmup."""
    for i in range(WARMUP):
        db.insert("t", [(i, f"warm-{i}")])
    latencies: list[float] = []
    for i in range(WARMUP, WARMUP + COMMITS):
        t0 = time.perf_counter()
        db.insert("t", [(i, f"row-{i}")])
        latencies.append(time.perf_counter() - t0)
    latencies.sort()
    return {
        "commits": COMMITS,
        "mean_us": statistics.fmean(latencies) * 1e6,
        "p50_us": percentile(latencies, 0.50) * 1e6,
        "p95_us": percentile(latencies, 0.95) * 1e6,
        "p99_us": percentile(latencies, 0.99) * 1e6,
        "commits_per_second": COMMITS / sum(latencies),
    }


def test_durability_overhead(tmp_path, benchmark):
    memory = build_db()
    memory_report = measure_commits(memory)

    nofsync = build_db(path=str(tmp_path / "nofsync"), fsync=False)
    nofsync_report = measure_commits(nofsync)
    nofsync_report["wal_bytes"] = nofsync.durability_status()["wal_bytes"]
    nofsync.close()

    fsync = build_db(path=str(tmp_path / "fsync"), fsync=True)
    fsync_report = measure_commits(fsync)
    fsync_report["wal_bytes"] = fsync.durability_status()["wal_bytes"]
    fsync.close()

    nofsync_multiple = (nofsync_report["mean_us"]
                        / memory_report["mean_us"])
    fsync_multiple = fsync_report["mean_us"] / memory_report["mean_us"]
    report = {
        "config": {"commits": COMMITS, "warmup": WARMUP,
                   "max_nofsync_multiple": MAX_NOFSYNC_MULTIPLE},
        "memory": memory_report,
        "durable_nofsync": nofsync_report,
        "durable_fsync": fsync_report,
        "nofsync_multiple": nofsync_multiple,
        "fsync_multiple": fsync_multiple,
    }
    print()
    for name in ("memory", "durable_nofsync", "durable_fsync"):
        row = report[name]
        print(f"{name:16s} mean {row['mean_us']:8.1f} us  "
              f"p95 {row['p95_us']:8.1f} us  "
              f"{row['commits_per_second']:8.0f} commits/s")
    print(f"wal overhead: {nofsync_multiple:.2f}x without fsync, "
          f"{fsync_multiple:.2f}x with fsync")

    out = pathlib.Path("BENCH_durability.json")
    out.write_text(json.dumps(report, indent=2) + "\n")

    # The log's bookkeeping must stay a small constant factor; the
    # fsync configuration is measured but bounded only by the device.
    assert nofsync_multiple <= MAX_NOFSYNC_MULTIPLE
    # A crash-consistent log actually exists in both durable setups.
    assert nofsync_report["wal_bytes"] > 0
    assert fsync_report["wal_bytes"] > 0

    # pytest-benchmark datapoint: one durable no-fsync commit.
    bench_db = build_db(path=str(tmp_path / "bench"), fsync=False)
    counter = iter(range(100_000, 2_000_000))
    benchmark(lambda: bench_db.insert("t", [(next(counter), "x")]))
    bench_db.close()
