"""Ablation A4 — Section 2: decorrelation (query flattening) on/off.

A gallery of subquery forms (scalar aggregate, EXISTS, NOT EXISTS, IN,
correlated AVG) timed with normalization's correlation removal enabled
(FULL) versus disabled (CORRELATED: Apply retained).

Two physical regimes, matching the paper's Section 1.1 discussion:

* **without FK indexes** — correlated execution degenerates to repeated
  scans; flattening wins across the board (the classic decorrelation
  argument);
* **with FK indexes** — correlated execution becomes index-lookup joins
  and "can actually be the best strategy"; the set-oriented plans stay
  competitive, and still win where per-row work remains super-constant
  (Q17's per-group aggregate).
"""

import pytest

from repro import CORRELATED, FULL
from repro.bench import format_table, time_query, tpch_database
from repro.tpch import QUERIES

SCALE_FACTOR = 0.005

GALLERY = {
    "scalar agg subquery (§1.1)": """
        select c_custkey from customer
        where 1000000 < (select sum(o_totalprice) from orders
                         where o_custkey = c_custkey)""",
    "exists (Q4 core)": """
        select o_orderpriority, count(*) from orders
        where exists (select * from lineitem
                      where l_orderkey = o_orderkey
                        and l_commitdate < l_receiptdate)
        group by o_orderpriority""",
    "not exists (Q22 core)": """
        select count(*) from customer
        where not exists (select * from orders
                          where o_custkey = c_custkey)""",
    "in subquery (Q18 core)": """
        select count(*) from orders
        where o_orderkey in (select l_orderkey from lineitem
                             group by l_orderkey
                             having sum(l_quantity) > 250)""",
    "correlated avg (Q17)": QUERIES["Q17"],
}


def _gallery_table(db, title):
    rows = []
    speedups = []
    for name, sql in GALLERY.items():
        full_rows = sorted(map(repr, db.execute(sql, FULL).rows))
        corr_rows = sorted(map(repr, db.execute(sql, CORRELATED).rows))
        assert full_rows == corr_rows, name
        _, exec_full, _ = time_query(db, sql, FULL, repeat=2)
        _, exec_corr, _ = time_query(db, sql, CORRELATED, repeat=2)
        speedup = exec_corr / max(exec_full, 1e-9)
        speedups.append(speedup)
        rows.append([name, f"{exec_full * 1000:.1f}",
                     f"{exec_corr * 1000:.1f}", f"{speedup:.1f}x"])
    print()
    print(title)
    print(format_table(
        ["subquery form", "flattened (ms)", "correlated (ms)", "speedup"],
        rows))
    return speedups


def test_ablation_decorrelation(benchmark):
    bare = tpch_database(SCALE_FACTOR, with_indexes=False)
    indexed = tpch_database(SCALE_FACTOR, with_indexes=True)

    bare_speedups = _gallery_table(
        bare, f"Ablation — decorrelation, no FK indexes (SF={SCALE_FACTOR})")
    indexed_speedups = _gallery_table(
        indexed, f"Ablation — decorrelation, FK indexes (SF={SCALE_FACTOR})")

    # Without indexes, flattening wins essentially everywhere.
    assert sum(1 for s in bare_speedups if s > 1.5) >= 4
    # With indexes, correlated execution closes the gap on the simple
    # forms (the paper's index-lookup point) but the aggregate-heavy Q17
    # still favors the flattened/segmented plan decisively.
    assert indexed_speedups[-1] > 3.0

    plan = indexed.plan(GALLERY["correlated avg (Q17)"], FULL)
    from repro.executor.physical import PhysicalExecutor
    executor = PhysicalExecutor(indexed.storage)
    benchmark(lambda: executor.run(plan))
