"""Plan-cache benchmark: repeated parameterized execution, cache on vs off.

A prepared TPC-H Q17-shaped statement (brand and container as parameters)
is executed many times with rotating bindings.  With the plan cache every
execution after the first skips parse → bind → normalize → optimize and
reuses the compiled plan; with the cache bypassed the whole pipeline runs
per call.  The paper's pipeline is expensive relative to executing over a
small scale factor, so caching must win by a wide margin (the acceptance
bar is 3x).
"""

import time

import pytest

from repro import FULL
from repro.bench import format_table, tpch_database

# Q17 with the two selective literals lifted into parameters.
Q17_PARAM = """
select sum(l_extendedprice) / 7.0 as avg_yearly
from lineitem, part
where p_partkey = l_partkey
  and p_brand = ?
  and p_container = ?
  and l_quantity < (
        select 0.2 * avg(l_quantity)
        from lineitem
        where l_partkey = p_partkey)
"""

SCALE_FACTOR = 0.002
ROUNDS = 30
BINDINGS = [("Brand#23", "MED BOX"), ("Brand#12", "JUMBO PKG"),
            ("Brand#34", "LG CASE")]


def _run_cached(db, rounds):
    stmt = db.prepare(Q17_PARAM, FULL)
    start = time.perf_counter()
    for i in range(rounds):
        stmt.execute(BINDINGS[i % len(BINDINGS)])
    return time.perf_counter() - start


def _run_uncached(db, rounds):
    start = time.perf_counter()
    for i in range(rounds):
        db.plan_cache.invalidate()  # force full parse/bind/optimize
        db.execute(Q17_PARAM, FULL, BINDINGS[i % len(BINDINGS)])
    return time.perf_counter() - start


def test_plan_cache_speedup():
    db = tpch_database(SCALE_FACTOR)
    db.plan_cache.invalidate()
    db.plan_cache.stats.reset()

    _run_cached(db, 2)  # warm-up: JIT dict shapes, storage stats
    cached = _run_cached(db, ROUNDS)
    uncached = _run_uncached(db, ROUNDS)
    speedup = uncached / cached

    per_cached = cached / ROUNDS * 1000
    per_uncached = uncached / ROUNDS * 1000
    print()
    print(f"Prepared Q17 (sf={SCALE_FACTOR}, {ROUNDS} executions, "
          f"{len(BINDINGS)} rotating bindings)")
    print(format_table(
        ["configuration", "total s", "ms/exec", "speedup"],
        [["plan cache on", f"{cached:.3f}", f"{per_cached:.2f}",
          f"{speedup:.1f}x"],
         ["plan cache off", f"{uncached:.3f}", f"{per_uncached:.2f}",
          "1.0x"]]))

    stats = db.plan_cache.stats
    # Every cached-run execution after the first compile is a pure hit.
    assert stats.hits >= ROUNDS
    # Acceptance bar: compiled-plan reuse is at least 3x faster than
    # planning from scratch on every call.
    assert speedup >= 3.0, f"plan cache speedup only {speedup:.2f}x"


def test_cached_and_uncached_agree():
    db = tpch_database(SCALE_FACTOR)
    stmt = db.prepare(Q17_PARAM, FULL)
    for binding in BINDINGS:
        cached_result = stmt.execute(binding)
        db.plan_cache.invalidate()
        fresh_result = db.execute(Q17_PARAM, FULL, binding)
        assert cached_result.rows == fresh_result.rows
