"""Vectorized-engine speedup on Q17-shaped workloads.

The tentpole claim of the vectorized batch engine: the grouped
aggregate at the heart of Q17's inner subquery (avg of l_quantity per
l_partkey over all of lineitem) runs at least 3x faster than the
tuple-at-a-time engine, because per-row interpreter dispatch is
replaced by whole-column loops.  The scan and filter shapes gain less
(they are dominated by Python-level data movement either way) and are
reported, not asserted.

The run writes ``BENCH_vectorized.json`` to the working directory —
the repository's BENCH trajectory artifact, uploaded by CI.
"""

import json
import pathlib

from repro.bench import vectorized_speedup_report, vectorized_speedup_table

SCALE_FACTOR = 0.01
MIN_AGGREGATE_SPEEDUP = 3.0


def test_vectorized_speedup(benchmark):
    report = vectorized_speedup_report(SCALE_FACTOR, repeat=3)
    print()
    print(f"Vectorized engine vs tuple engine, sf={SCALE_FACTOR}")
    print(vectorized_speedup_table(report))

    out = pathlib.Path("BENCH_vectorized.json")
    out.write_text(json.dumps(report, indent=2) + "\n")

    workloads = report["workloads"]
    headline = workloads[report["headline"]]
    assert headline["speedup"] >= MIN_AGGREGATE_SPEEDUP, \
        f"Q17 aggregate speedup {headline['speedup']:.2f}x < " \
        f"{MIN_AGGREGATE_SPEEDUP}x"
    # The full query must not regress: its NLApply inner side runs on
    # the row engine, so the bound is parity-ish, not 3x.
    assert workloads["q17_full"]["speedup"] >= 0.7

    from repro.bench import tpch_database
    from repro.executor import VectorizedExecutor
    from repro import FULL
    db = tpch_database(SCALE_FACTOR)
    plan = db.plan(workloads["q17_aggregate"]["sql"], FULL)
    executor = VectorizedExecutor(db.storage)
    benchmark(lambda: executor.run(plan))
