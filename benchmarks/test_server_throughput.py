"""Server throughput under sustained concurrent load.

Drives the wire server with several concurrent clients running a mixed
read workload and reports sustained QPS, latency percentiles, plan-cache
hit rate and shed count.  In-process sessions (no sockets) are measured
alongside as the upper bound, so the wire overhead is visible in the
report.

The run writes ``BENCH_server.json`` to the working directory — the
repository's BENCH trajectory artifact, uploaded by CI.  The asserted
floors are deliberately modest (CI machines are noisy); the JSON carries
the real numbers.
"""

import json
import pathlib
import threading
import time

from repro import Database, DataType
from repro.server import QueryServer, ServerClient

CLIENTS = 4
QUERIES_PER_CLIENT = 150
MIN_WIRE_QPS = 25.0
MIN_SESSION_QPS = 100.0

WORKLOAD = [
    "select a from t where b = 1 order by a",
    "select b, count(*) from t group by b order by b",
    "select a, (select count(*) from u where ua = b) from t "
    "where a < 40 order by a",
    "select max(a) from t",
]


def build_db() -> Database:
    db = Database(plan_cache_shards=4)
    db.create_table("t", [("a", DataType.INTEGER, False),
                          ("b", DataType.INTEGER, False)],
                    primary_key=("a",))
    db.create_table("u", [("uk", DataType.INTEGER, False),
                          ("ua", DataType.INTEGER, False)],
                    primary_key=("uk",))
    db.insert("t", [(i, i % 7) for i in range(200)])
    db.insert("u", [(i, i % 11) for i in range(150)])
    for sql in WORKLOAD:  # warm the plan cache before measuring
        db.execute(sql)
    db.plan_cache.stats.reset()
    return db


def percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def drive_clients(run_one) -> dict:
    """Run the workload from CLIENTS concurrent threads; ``run_one``
    maps (thread_no, sql) -> result."""
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS)

    def worker(n: int) -> None:
        mine: list[float] = []
        try:
            barrier.wait()
            for step in range(QUERIES_PER_CLIENT):
                sql = WORKLOAD[(n + step) % len(WORKLOAD)]
                t0 = time.perf_counter()
                run_one(n, sql)
                mine.append(time.perf_counter() - t0)
        except BaseException as exc:  # pragma: no cover - failure path
            with lock:
                errors.append(f"client {n}: {exc!r}")
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=worker, args=(n,))
               for n in range(CLIENTS)]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    elapsed = time.perf_counter() - started
    assert not errors, errors
    total = CLIENTS * QUERIES_PER_CLIENT
    assert len(latencies) == total
    latencies.sort()
    return {
        "queries": total,
        "elapsed_seconds": elapsed,
        "qps": total / elapsed,
        "latency_p50_ms": percentile(latencies, 0.50) * 1e3,
        "latency_p95_ms": percentile(latencies, 0.95) * 1e3,
        "latency_p99_ms": percentile(latencies, 0.99) * 1e3,
    }


def test_server_throughput(benchmark):
    # In-process sessions: the no-socket upper bound.
    db = build_db()
    sessions = [db.session() for _ in range(CLIENTS)]
    session_report = drive_clients(
        lambda n, sql: sessions[n].execute(sql))
    for session in sessions:
        session.close()
    session_report["plan_cache_hit_rate"] = db.plan_cache.stats.hit_rate

    # The same workload over the wire.
    db = build_db()
    with QueryServer(db, max_workers=CLIENTS) as server:
        host, port = server.address
        clients = [ServerClient(host, port, timeout=120)
                   for _ in range(CLIENTS)]
        wire_report = drive_clients(lambda n, sql: clients[n].query(sql))
        metrics = server.metrics()
        wire_report["plan_cache_hit_rate"] = metrics["plan_cache_hit_rate"]
        wire_report["shed"] = metrics["shed"]
        for client in clients:
            client.close()

    report = {"config": {"clients": CLIENTS,
                         "queries_per_client": QUERIES_PER_CLIENT,
                         "workload": WORKLOAD},
              "session": session_report,
              "wire": wire_report}
    print()
    print(f"session engine: {session_report['qps']:8.1f} qps  "
          f"p95 {session_report['latency_p95_ms']:6.2f} ms")
    print(f"wire protocol:  {wire_report['qps']:8.1f} qps  "
          f"p95 {wire_report['latency_p95_ms']:6.2f} ms  "
          f"(hit rate {wire_report['plan_cache_hit_rate']:.2%})")

    out = pathlib.Path("BENCH_server.json")
    out.write_text(json.dumps(report, indent=2) + "\n")

    assert session_report["qps"] >= MIN_SESSION_QPS
    assert wire_report["qps"] >= MIN_WIRE_QPS
    assert wire_report["plan_cache_hit_rate"] >= 0.90

    # pytest-benchmark datapoint: one wire round-trip on a hot cache.
    db2 = build_db()
    with QueryServer(db2, max_workers=2) as server:
        host, port = server.address
        with ServerClient(host, port, timeout=120) as client:
            client.query(WORKLOAD[0])
            benchmark(lambda: client.query(WORKLOAD[0]))
