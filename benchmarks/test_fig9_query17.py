"""Experiment E6 — Figure 9 (right): TPC-H Query 17 elapsed time.

Paper: elapsed power-run time for Q17 across published 300 GB results —
SQL Server fastest (79.7 s on 8 CPUs) with other systems slower on many
more processors.  Substitution (DESIGN.md §3): the processor-count axis
becomes the scale factor; the DBMS axis becomes optimizer configurations.

Expected shape: FULL (with SegmentApply + join pushdown + index lookup) is
fastest at every scale factor, an order of magnitude or more ahead of
correlated execution, with the gap growing with scale.
"""

import pytest

from repro import FULL
from repro.bench import (CONFIGURATIONS, run_matrix, series_table,
                         tpch_database)
from repro.tpch import QUERIES

SCALE_FACTORS = [0.002, 0.005, 0.01, 0.02]
HEADLINE_SF = 0.01


def test_fig9_query17_scaling(benchmark):
    measurements = run_matrix(QUERIES["Q17"], "Q17", SCALE_FACTORS,
                              CONFIGURATIONS, repeat=2)
    print()
    print("Figure 9 (right) — Q17 elapsed execution seconds")
    print(series_table(measurements))

    by_key = {(m.scale_factor, m.mode): m.elapsed_seconds
              for m in measurements}
    top = max(SCALE_FACTORS)
    # FULL beats correlated by a wide margin at every scale factor ≥ 0.005.
    for sf in SCALE_FACTORS:
        if sf >= 0.005:
            assert by_key[(sf, "full")] * 5 < by_key[(sf, "correlated")]
    # At the top scale, FULL is at least an order of magnitude ahead of
    # correlated execution and not slower than decorrelation alone.
    assert by_key[(top, "full")] * 10 < by_key[(top, "correlated")]
    assert by_key[(top, "full")] <= by_key[(top, "decorrelate_only")] * 1.5

    db = tpch_database(HEADLINE_SF)
    plan = db.plan(QUERIES["Q17"], FULL)
    from repro.executor.physical import PhysicalExecutor
    executor = PhysicalExecutor(db.storage)
    benchmark(lambda: executor.run(plan))
