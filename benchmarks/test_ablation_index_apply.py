"""Ablation A5 — Section 4: re-introduction of correlated execution
("the simplest and most common being index-lookup-join") on/off.

A selective outer input over an indexed inner table is the case where the
paper notes correlated execution "can actually be the best strategy, if
the outer table is small, and appropriate indices exist" (Section 1.1).
"""

import pytest

from repro import FULL
from repro.bench import (NO_INDEX_APPLY, format_table, time_query,
                         tpch_database)
from repro.tpch import QUERIES

SCALE_FACTOR = 0.01

PROBE = """
    select c_name, o_orderkey, o_totalprice
    from customer, orders
    where o_custkey = c_custkey
      and c_custkey = 41
"""


def test_ablation_index_apply(benchmark):
    db = tpch_database(SCALE_FACTOR)
    assert sorted(db.execute(PROBE, FULL).rows) == \
        sorted(db.execute(PROBE, NO_INDEX_APPLY).rows)

    rows = []
    for label, mode in (("index apply on", FULL),
                        ("index apply off", NO_INDEX_APPLY)):
        _, exec_s, count = time_query(db, PROBE, mode, repeat=3)
        rows.append([label, f"{exec_s * 1000:.2f}", count])
    print()
    print(f"Ablation — index-lookup join (selective outer, SF={SCALE_FACTOR})")
    print(format_table(["configuration", "exec (ms)", "rows"], rows))

    plan = db.plan(PROBE, FULL)
    from repro.executor.physical import PhysicalExecutor
    executor = PhysicalExecutor(db.storage)
    benchmark(lambda: executor.run(plan))
