"""Materialized-view rewrite speedup on the Q17-shaped grouped aggregate.

The tentpole claim of the matview subsystem: a query whose canonical
fingerprint a materialized view answers runs at least 5x faster when
the optimizer transparently rewrites it to re-aggregate the view's
backing rows (a few hundred groups) instead of scanning ``lineitem``
(tens of thousands of rows).  Both sides go through the full
``Database.execute`` path with warm plan caches, so the measured gap is
the scan the view avoids — not compilation.

The run writes ``BENCH_matview.json`` to the working directory — the
repository's BENCH trajectory artifact, uploaded by CI.
"""

import json
import pathlib

from repro import FULL
from repro.bench import (matview_speedup_report, matview_speedup_table,
                         tpch_database)

SCALE_FACTOR = 0.01
MIN_MATVIEW_SPEEDUP = 5.0


def test_matview_speedup(benchmark):
    report = matview_speedup_report(SCALE_FACTOR, repeat=5)
    print()
    print(f"Materialized view vs base-table plan, sf={SCALE_FACTOR}")
    print(matview_speedup_table(report))

    out = pathlib.Path("BENCH_matview.json")
    out.write_text(json.dumps(report, indent=2) + "\n")

    assert report["matview_speedup"] >= MIN_MATVIEW_SPEEDUP, \
        f"matview speedup {report['matview_speedup']:.2f}x < " \
        f"{MIN_MATVIEW_SPEEDUP}x"

    db = tpch_database(SCALE_FACTOR)
    if not db.catalog.has_matview("mv_q17_qty"):
        db.matviews.create("mv_q17_qty", report["view_sql"])
    db.execute(report["sql"], FULL)  # warm the rewritten plan
    benchmark(lambda: db.execute(report["sql"], FULL).rows)
