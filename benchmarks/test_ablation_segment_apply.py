"""Ablation A3 — Section 3.4: segmented execution on/off.

With SegmentApply disabled the optimizer falls back to the flattened
aggregate-join plan for Q17; with it enabled, the per-segment plan
(Figure 7) computes the average only for the partkeys that survive the
part filter.  The database carries no FK indexes here: with an index on
``l_partkey`` the correlated index-lookup plan hides the effect, whereas
the segmented-vs-flattened contrast is exactly about avoiding the
whole-table aggregation when no such access path exists.
"""

import pytest

from repro import FULL
from repro.bench import (NO_SEGMENT_APPLY, format_table, time_query,
                         tpch_database)
from repro.physical import PSegmentApply
from repro.tpch import QUERIES

SCALE_FACTOR = 0.01


def _walk(plan):
    yield plan
    for child in plan.children:
        yield from _walk(child)


def test_ablation_segment_apply(benchmark):
    db = tpch_database(SCALE_FACTOR, with_indexes=False)
    sql = QUERIES["Q17"]

    with_plan = db.plan(sql, FULL)
    without_plan = db.plan(sql, NO_SEGMENT_APPLY)
    assert any(isinstance(n, PSegmentApply) for n in _walk(with_plan))
    assert not any(isinstance(n, PSegmentApply) for n in _walk(without_plan))

    rows = []
    timings = {}
    for label, mode in (("segment_apply on", FULL),
                        ("segment_apply off", NO_SEGMENT_APPLY)):
        plan_s, exec_s, count = time_query(db, sql, mode, repeat=3)
        rows.append([label, f"{exec_s * 1000:.2f}", count])
        timings[label] = exec_s
    print()
    print(f"Ablation — SegmentApply (TPC-H Q17, SF={SCALE_FACTOR})")
    print(format_table(["configuration", "exec (ms)", "rows"], rows))

    assert db.execute(sql, FULL).rows == db.execute(sql, NO_SEGMENT_APPLY).rows

    from repro.executor.physical import PhysicalExecutor
    executor = PhysicalExecutor(db.storage)
    prepared = executor.prepare(with_plan)
    from repro.executor.physical import ExecutionContext
    benchmark(lambda: list(prepared.rows(ExecutionContext())))
