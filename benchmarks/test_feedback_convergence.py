"""Drift convergence — the feedback loop repairs a skew-broken plan.

Scenario: a Q17-shaped query (join plus correlated scalar aggregate)
runs warm, then a bulk insert skews one part brand so badly that the
uniform equality model under-estimates the filter by an order of
magnitude.  The first post-drift execution observes the misestimate,
records a cardinality correction and flags the cached plan stale; the
next execution re-optimizes against the corrected statistics and the
max Q-error collapses back under the staleness threshold.

The run writes ``BENCH_feedback.json`` to the working directory — one
record per execution (max Q-error, corrections stored, plans
invalidated) plus the convergence summary — uploaded by CI.
"""

import json
import pathlib

from repro import DEFAULT_Q_ERROR_THRESHOLD, FULL, Database, DataType

PARTS = 200
BRANDS = 20
SKEW_BRAND = 7
SKEW_PARTS = 800          # bulk insert: brand 7 jumps from 5% to ~84%
LINES_PER_PART = 3
MAX_EXECUTIONS = 6        # convergence budget after the drift

Q17_SHAPED = """
select sum(l.qty)
from lineitem l join part p on p.pk = l.partkey
where p.brand = 7
  and l.qty < (select 2 * avg(l2.qty) from lineitem l2
               where l2.partkey = p.pk)
"""


def build_database() -> Database:
    db = Database(feedback=True)
    db.create_table("part", [("pk", DataType.INTEGER, False),
                             ("brand", DataType.INTEGER, False)],
                    primary_key=("pk",))
    db.create_table("lineitem", [("lk", DataType.INTEGER, False),
                                 ("partkey", DataType.INTEGER, False),
                                 ("qty", DataType.INTEGER, False)],
                    primary_key=("lk",))
    db.insert("part", [(i, i % BRANDS) for i in range(PARTS)])
    db.insert("lineitem",
              [(p * LINES_PER_PART + j, p, (p + j) % 10 + 1)
               for p in range(PARTS) for j in range(LINES_PER_PART)])
    return db


def test_feedback_converges_after_drift():
    db = build_database()
    threshold = db.feedback.q_error_threshold
    assert threshold == DEFAULT_Q_ERROR_THRESHOLD

    warm = db.execute(Q17_SHAPED, FULL)
    assert not warm.degraded

    # Bulk-insert skew: most parts now carry the probed brand, plus
    # matching lineitems so the join stays selective the same way.
    db.insert("part", [(PARTS + i, SKEW_BRAND) for i in range(SKEW_PARTS)])
    db.insert("lineitem",
              [((PARTS + i) * LINES_PER_PART + j, PARTS + i,
                (i + j) % 10 + 1)
               for i in range(SKEW_PARTS) for j in range(LINES_PER_PART)])

    executions = []
    converged_after = None
    for iteration in range(1, MAX_EXECUTIONS + 1):
        result = db.execute(Q17_SHAPED, FULL)
        q = result.stats.max_q_error
        executions.append({
            "iteration": iteration,
            "max_q_error": q,
            "corrections_stored": len(db.corrections),
            "plans_invalidated": db.feedback.plans_invalidated,
            "rows": len(result.rows),
        })
        if converged_after is None and q is not None and q <= threshold:
            converged_after = iteration

    report = {
        "benchmark": "feedback_convergence",
        "q_error_threshold": threshold,
        "skew": {"parts_before": PARTS, "parts_inserted": SKEW_PARTS,
                 "brand": SKEW_BRAND},
        "executions": executions,
        "converged_after": converged_after,
        "feedback": db.feedback.as_dict(),
    }
    out = pathlib.Path("BENCH_feedback.json")
    out.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"{'run':>4} {'max q-error':>12} {'corrections':>12} "
          f"{'invalidated':>12}")
    for record in executions:
        q = record["max_q_error"]
        print(f"{record['iteration']:>4} "
              f"{q if q is None else format(q, '12.2f'):>12} "
              f"{record['corrections_stored']:>12} "
              f"{record['plans_invalidated']:>12}")
    print(f"converged after {converged_after} execution(s); "
          f"report: {out}")

    # The drifted estimate really was wrong past the threshold ...
    assert executions[0]["max_q_error"] > threshold
    # ... the stale plan was invalidated and replanned ...
    assert db.feedback.plans_invalidated >= 1
    assert db.plan_cache.stats.feedback_stale >= 1
    # ... and the loop converged within budget to an accurate plan.
    assert converged_after is not None, "never converged"
    assert converged_after <= MAX_EXECUTIONS
    assert executions[-1]["max_q_error"] <= threshold
