"""TPC-H Query 17 and segmented execution (paper Section 3.4, Figures 6/7).

Walks the SegmentApply story:

1. normalize Q17 — the correlated AVG subquery flattens into a self-join
   of lineitem with its aggregate (the paper's "two almost identical
   expressions joined together");
2. show the SegmentApply alternative the optimizer generates — lineitem
   joined with the filtered part table, segmented on l_partkey, the
   average computed per segment (Figure 7);
3. time the strategies against each other.

Run:  python examples/q17_segment_apply.py   (takes ~½ minute)
"""

import time

from repro import CORRELATED, DECORRELATE_ONLY, FULL, Database
from repro.bench import tpch_database
from repro.core.normalize import normalize
from repro.core.optimizer.pushdown import push_selections
from repro.core.optimizer.segment import segment_alternatives
from repro.algebra import explain
from repro.physical import explain_physical
from repro.sql import parse
from repro.tpch import QUERIES

SCALE_FACTOR = 0.01


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    print(f"building TPC-H at SF={SCALE_FACTOR} ...")
    db = tpch_database(SCALE_FACTOR)
    sql = QUERIES["Q17"]

    banner("Q17 after normalization (decorrelated: GroupBy over self-join)")
    bound = db._binder.bind(parse(sql))
    normalized = push_selections(normalize(bound.rel))
    print(explain(normalized))

    banner("SegmentApply alternative (paper Figure 7 shape)")
    variants = segment_alternatives(normalized)
    if variants:
        print(explain(variants[0]))
    else:
        print("(no segment variant generated)")

    banner("Chosen physical plan (FULL)")
    print(explain_physical(db.plan(sql, FULL)))

    banner("Strategy timings")
    for mode in (FULL, DECORRELATE_ONLY, CORRELATED):
        start = time.perf_counter()
        result = db.execute(sql, mode)
        elapsed = time.perf_counter() - start
        print(f"  {mode.name:<18} {elapsed * 1000:8.1f} ms   "
              f"avg_yearly = {result.rows[0][0]}")


if __name__ == "__main__":
    main()
