"""A small TPC-H command line: generate data, run queries, inspect plans.

Usage examples::

    python examples/tpch_cli.py --scale 0.005 --query Q17
    python examples/tpch_cli.py --scale 0.01 --query Q2 --mode correlated
    python examples/tpch_cli.py --scale 0.002 --query Q4 --explain
    python examples/tpch_cli.py --scale 0.002 --sql "select count(*) from orders"
    python examples/tpch_cli.py --scale 0.002 --suite
"""

import argparse
import sys
import time

from repro import MODES, Database
from repro.tpch import QUERIES, create_tpch_schema, generate_tpch


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="TPC-H playground for the SIGMOD 2001 reproduction")
    parser.add_argument("--scale", type=float, default=0.002,
                        help="TPC-H scale factor (default 0.002)")
    parser.add_argument("--seed", type=int, default=20010521)
    parser.add_argument("--mode", choices=sorted(MODES), default="full",
                        help="engine configuration")
    parser.add_argument("--query", choices=sorted(QUERIES),
                        help="run one of the bundled TPC-H queries")
    parser.add_argument("--sql", help="run an ad-hoc SQL statement")
    parser.add_argument("--explain", action="store_true",
                        help="show the normalized tree and physical plan")
    parser.add_argument("--suite", action="store_true",
                        help="run the whole bundled query suite")
    parser.add_argument("--no-indexes", action="store_true",
                        help="create the schema without FK indexes")
    return parser


def run_one(db: Database, label: str, sql: str, args) -> None:
    mode = MODES[args.mode]
    if args.explain:
        print(db.explain(sql, mode))
        print()
    start = time.perf_counter()
    result = db.execute(sql, mode)
    elapsed = time.perf_counter() - start
    print(f"{label}: {len(result.rows)} rows in {elapsed * 1000:.1f} ms "
          f"({mode.name})")
    if result.rows:
        print("  " + " | ".join(result.names))
        for row in result.rows[:10]:
            print("  " + " | ".join(str(v) for v in row))
        if len(result.rows) > 10:
            print(f"  ... {len(result.rows) - 10} more")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not (args.query or args.sql or args.suite):
        print("nothing to do: pass --query, --sql or --suite",
              file=sys.stderr)
        return 2

    print(f"generating TPC-H data at SF={args.scale} ...")
    db = Database()
    create_tpch_schema(db, with_indexes=not args.no_indexes)
    start = time.perf_counter()
    counts = generate_tpch(db, args.scale, args.seed)
    print(f"  {counts.lineitem} lineitems / {counts.orders} orders "
          f"in {time.perf_counter() - start:.1f} s")
    print()

    if args.suite:
        for name in sorted(QUERIES):
            run_one(db, name, QUERIES[name], args)
            print()
        return 0
    if args.query:
        run_one(db, args.query, QUERIES[args.query], args)
    if args.sql:
        run_one(db, "ad-hoc", args.sql, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
