"""Quickstart: create tables, load rows, run SQL, inspect plans.

Run:  python examples/quickstart.py
"""

from repro import Database, DataType, FULL, NAIVE


def main() -> None:
    db = Database()

    # -- schema ---------------------------------------------------------------
    db.create_table(
        "customer",
        [("c_custkey", DataType.INTEGER, False),
         ("c_name", DataType.VARCHAR, False),
         ("c_acctbal", DataType.FLOAT, False)],
        primary_key=("c_custkey",))
    db.create_table(
        "orders",
        [("o_orderkey", DataType.INTEGER, False),
         ("o_custkey", DataType.INTEGER, False),
         ("o_totalprice", DataType.FLOAT, False)],
        primary_key=("o_orderkey",))
    db.create_index("ix_orders_custkey", "orders", ["o_custkey"])

    # -- data ------------------------------------------------------------------
    db.insert("customer", [
        (1, "alice", 120.0),
        (2, "bob", 80.0),
        (3, "carol", 250.0),
    ])
    db.insert("orders", [
        (10, 1, 700000.0),
        (11, 1, 450000.0),
        (12, 2, 90000.0),
        (13, 3, 1200000.0),
    ])

    # -- a correlated subquery, the paper's running example ----------------------
    sql = """
        select c_name
        from customer
        where 1000000 < (select sum(o_totalprice) from orders
                         where o_custkey = c_custkey)
        order by c_name
    """

    result = db.execute(sql)  # FULL optimization by default
    print("big spenders:", [name for (name,) in result])

    # The engine decorrelated the subquery; inspect both plan levels:
    print()
    print(db.explain(sql, FULL))

    # Every execution mode agrees — NAIVE interprets the correlated tree
    # directly (paper Section 2.1), FULL runs the optimized plan.
    assert db.execute(sql, NAIVE).rows == result.rows

    # -- ordinary SQL works too ---------------------------------------------------
    print()
    totals = db.execute("""
        select c_name, count(*) as orders, sum(o_totalprice) as total
        from customer left outer join orders on o_custkey = c_custkey
        group by c_name, c_custkey
        order by total desc
    """)
    print(f"{'name':<8}{'orders':>8}{'total':>14}")
    for name, count, total in totals:
        print(f"{name:<8}{count:>8}{total if total else 0.0:>14.2f}")

    # -- prepared statements: compile once, execute with fresh bindings -----------
    print()
    stmt = db.prepare("""
        select c_name from customer
        where c_acctbal >= :lo and c_acctbal < :hi
        order by c_name
    """)
    for lo, hi in [(0.0, 100.0), (100.0, 1000.0)]:
        names = [name for (name,) in stmt.execute({"lo": lo, "hi": hi})]
        print(f"balance in [{lo:.0f}, {hi:.0f}):", names)
    stats = db.plan_cache.stats
    print(f"plan cache: {stats.hits} hits, {stats.misses} misses")

    # Results carry their schema and convert to dicts:
    richest = db.execute(
        "select c_name, c_acctbal from customer order by c_acctbal desc")
    print("columns:", [name for name, _ in richest.columns])
    print("richest:", richest.to_dicts()[0])

    # -- the same engine through the DB-API 2.0 adapter ---------------------------
    print()
    from repro import dbapi

    conn = dbapi.connect(db)
    cur = conn.cursor()
    cur.execute("select c_name from customer where c_acctbal > ?", (200.0,))
    print("dbapi columns:", [d[0] for d in cur.description])
    print("dbapi rows:", cur.fetchall())
    conn.close()


if __name__ == "__main__":
    main()
