"""Syntax independence (paper Section 1.2, Figure 1).

"The query processor should then produce the same efficient execution plan
for the various equivalent SQL formulations ... achieving a degree of
syntax-independence."

The three formulations of the Section 1.1 query — correlated subquery,
outerjoin-then-aggregate, aggregate-then-join — are optimized and shown to
produce the same physical plan shape and identical results.

Run:  python examples/syntax_independence.py
"""

import re

from repro import FULL
from repro.bench import tpch_database
from repro.physical import explain_physical
from repro.tpch import paper_example_formulations

SCALE_FACTOR = 0.005


def plan_shape(plan) -> str:
    """Physical plan text normalized for comparison: column ids replaced,
    pass-through ComputeScalar wrappers (cosmetic projections) dropped."""
    text = re.sub(r"#\d+", "#x", explain_physical(plan))
    lines = [line.strip() for line in text.splitlines()
             if not line.strip().startswith("ComputeScalar(")]
    return "\n".join(lines)


def main() -> None:
    db = tpch_database(SCALE_FACTOR)
    formulations = paper_example_formulations(1000000.0)

    shapes = {}
    results = {}
    for label, sql in formulations.items():
        plan = db.plan(sql, FULL)
        shapes[label] = plan_shape(plan)
        results[label] = sorted(db.execute(sql, FULL).rows)

    first_label = next(iter(shapes))
    print(f"physical plan for: {first_label}")
    print()
    print(shapes[first_label])
    print()

    reference_shape = shapes[first_label]
    reference_rows = results[first_label]
    for label in formulations:
        same_plan = shapes[label] == reference_shape
        same_rows = results[label] == reference_rows
        print(f"{label:<32} same plan: {str(same_plan):<6} "
              f"same result: {same_rows} ({len(results[label])} rows)")

    if all(shapes[label] == reference_shape for label in formulations):
        print("\nsyntax independence achieved: one plan, three syntaxes.")
    else:
        print("\nplans differ in shape (but results agree) — see "
              "EXPERIMENTS.md for discussion.")


if __name__ == "__main__":
    main()
