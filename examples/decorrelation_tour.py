"""Decorrelation tour: the paper's Section 2 pipeline, stage by stage.

Reproduces the derivation of Figures 2, 3 and 5 on the running example
("customers who have ordered more than $1,000,000"):

1. the algebrizer's mutually recursive tree (Figure 3);
2. Apply introduction — mutual recursion removed (Figure 2);
3. Apply removal via identity (9) then (2) — outerjoin + GroupBy;
4. outerjoin simplification — the final join form (Figure 5).

Run:  python examples/decorrelation_tour.py
"""

from repro import Database, DataType
from repro.algebra import explain
from repro.core.normalize import (ApplyRemovalConfig, remove_applies,
                                  remove_subqueries, simplify,
                                  simplify_outerjoins)
from repro.sql import parse

SQL = """
    select c_custkey
    from customer
    where 1000000 < (select sum(o_totalprice) from orders
                     where o_custkey = c_custkey)
"""


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    db = Database()
    db.create_table("customer",
                    [("c_custkey", DataType.INTEGER, False),
                     ("c_name", DataType.VARCHAR, False)],
                    primary_key=("c_custkey",))
    db.create_table("orders",
                    [("o_orderkey", DataType.INTEGER, False),
                     ("o_custkey", DataType.INTEGER, False),
                     ("o_totalprice", DataType.FLOAT, False)],
                    primary_key=("o_orderkey",))

    bound = db._binder.bind(parse(SQL))

    banner("Stage 1 — algebrizer output: scalar/relational mutual recursion "
           "(paper Figure 3)")
    print(explain(bound.rel))
    print("\nThe [subquery] marker shows a relational tree embedded inside "
          "the Select's scalar predicate.")

    banner("Stage 2 — mutual recursion removed: Apply introduced "
           "(paper Figure 2)")
    applied = remove_subqueries(bound.rel)
    applied = simplify(applied)
    print(explain(applied))
    print("\nApply[inner] evaluates the parameterized subexpression per "
          "customer row; the correlation is now an algebraic operator.")

    banner("Stage 3 — Apply removed: identity (9) then identity (2) "
           "(paper Figure 5, lines 1-2)")
    decorrelated = remove_applies(applied, ApplyRemovalConfig())
    decorrelated = simplify(decorrelated)
    print(explain(decorrelated))
    print("\nThe scalar aggregate became a vector GroupBy over a left outer "
          "join: Dayal's strategy, derived algebraically.")

    banner("Stage 4 — outerjoin simplified under the null-rejecting HAVING "
           "(paper Figure 5, line 3)")
    final = simplify_outerjoins(decorrelated)
    final = simplify(final)
    print(explain(final))
    print("\n'1000000 < X' rejects NULL on X = sum(o_totalprice); the "
          "rejection derives through the GroupBy to o_totalprice, turning "
          "the outer join into a join.")


if __name__ == "__main__":
    main()
